"""Unit tests for the INJ algorithm (Algorithms 4/5)."""

import pytest

from repro.core.brute import brute_force_rcj
from repro.core.inj import inj
from repro.datasets.synthetic import uniform
from repro.rtree.bulk import bulk_load
from repro.storage.buffer import buffer_for_trees
from repro.storage.stats import CostModel


@pytest.fixture
def workload():
    points_p = uniform(400, seed=10)
    points_q = uniform(300, seed=20, start_oid=400)
    tree_p = bulk_load(points_p, name="TP")
    tree_q = bulk_load(points_q, name="TQ")
    buf = buffer_for_trees([tree_p, tree_q], 0.05)
    tree_p.attach_buffer(buf)
    tree_q.attach_buffer(buf)
    return points_p, points_q, tree_p, tree_q, buf


class TestCorrectness:
    def test_matches_oracle(self, workload):
        points_p, points_q, tree_p, tree_q, _ = workload
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        report = inj(tree_q, tree_p)
        assert report.pair_keys() == expected

    def test_no_duplicates(self, workload):
        _, _, tree_p, tree_q, _ = workload
        report = inj(tree_q, tree_p)
        keys = [r.key() for r in report.pairs]
        assert len(keys) == len(set(keys))

    def test_random_order_same_result(self, workload):
        _, _, tree_p, tree_q, _ = workload
        df = inj(tree_q, tree_p, search_order="depth_first")
        rand = inj(tree_q, tree_p, search_order="random", seed=3)
        assert df.pair_keys() == rand.pair_keys()

    def test_unknown_order_rejected(self, workload):
        _, _, tree_p, tree_q, _ = workload
        with pytest.raises(ValueError):
            inj(tree_q, tree_p, search_order="zigzag")

    def test_empty_inner_tree(self):
        tree_q = bulk_load(uniform(10, seed=1))
        tree_p = bulk_load([])
        assert inj(tree_q, tree_p).pairs == []

    def test_empty_outer_tree(self):
        tree_q = bulk_load([])
        tree_p = bulk_load(uniform(10, seed=1))
        assert inj(tree_q, tree_p).pairs == []


class TestFilterVerificationSplit:
    def test_skipping_verification_yields_superset(self, workload):
        _, _, tree_p, tree_q, _ = workload
        with_verify = inj(tree_q, tree_p, verify=True)
        without = inj(tree_q, tree_p, verify=False)
        assert with_verify.pair_keys() <= without.pair_keys()
        assert without.result_count == without.candidate_count

    def test_candidates_bounded_below_by_results(self, workload):
        _, _, tree_p, tree_q, _ = workload
        report = inj(tree_q, tree_p)
        assert report.candidate_count >= report.result_count

    def test_candidates_far_below_cartesian(self, workload):
        points_p, points_q, tree_p, tree_q, _ = workload
        report = inj(tree_q, tree_p)
        assert report.candidate_count < len(points_p) * len(points_q) / 10


class TestAccounting:
    def test_cost_fields_populated(self, workload):
        _, _, tree_p, tree_q, _ = workload
        report = inj(tree_q, tree_p)
        assert report.algorithm == "INJ"
        assert report.node_accesses > 0
        assert report.page_faults > 0
        assert report.cpu_seconds > 0
        assert report.io_seconds == pytest.approx(
            report.page_faults * 0.010
        )

    def test_custom_cost_model(self, workload):
        _, _, tree_p, tree_q, _ = workload
        report = inj(tree_q, tree_p, cost_model=CostModel(ms_per_fault=100.0))
        assert report.io_seconds == pytest.approx(report.page_faults * 0.1)

    def test_depth_first_order_faults_less_than_random(self):
        # Section 3.4: DF order exploits buffer locality.
        points_p = uniform(1500, seed=31)
        points_q = uniform(1500, seed=32, start_oid=2000)
        tree_p = bulk_load(points_p, name="TP")
        tree_q = bulk_load(points_q, name="TQ")
        # A buffer large enough to hold a per-point working set: that is
        # where the depth-first locality of Section 3.4 pays off.
        buf = buffer_for_trees([tree_p, tree_q], 0.40)
        tree_p.attach_buffer(buf)
        tree_q.attach_buffer(buf)

        buf.clear(); buf.stats.reset()
        df = inj(tree_q, tree_p, search_order="depth_first")
        buf.clear(); buf.stats.reset()
        rand = inj(tree_q, tree_p, search_order="random", seed=5)
        assert df.page_faults < rand.page_faults
