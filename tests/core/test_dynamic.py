"""Tests for incremental RCJ maintenance (DynamicRCJ).

Every test compares against the from-scratch oracle
(:func:`brute_force_rcj`) on the current point population — the
strongest possible check of the update rules.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute import brute_force_rcj
from repro.core.dynamic import DynamicRCJ
from repro.datasets.synthetic import uniform
from repro.geometry.point import Point

from tests.conftest import make_points


def _oracle_keys(ps, qs):
    return {r.key() for r in brute_force_rcj(ps, qs)}


class TestConstruction:
    def test_empty(self):
        dyn = DynamicRCJ()
        assert len(dyn) == 0
        assert dyn.pairs == []

    def test_initial_result_matches_oracle(self):
        ps = uniform(120, seed=100)
        qs = uniform(100, seed=101, start_oid=1000)
        dyn = DynamicRCJ(ps, qs)
        assert dyn.pair_keys() == _oracle_keys(ps, qs)

    def test_repr_mentions_sizes(self):
        dyn = DynamicRCJ(uniform(10, seed=0), uniform(5, seed=1, start_oid=100))
        assert "|P|=10" in repr(dyn)


class TestInsert:
    def test_insert_into_empty(self):
        dyn = DynamicRCJ()
        dyn.insert(Point(100, 100, 0), "P")
        assert len(dyn) == 0  # no Q yet
        dyn.insert(Point(200, 200, 0), "Q")
        assert dyn.pair_keys() == {(0, 0)}

    def test_insert_kills_blocked_pair(self):
        # P p0 and Q q0 join; a new P point in the middle of their ring
        # must kill the pair and form two smaller ones.
        dyn = DynamicRCJ([Point(0, 0, 0)], [Point(100, 0, 0)])
        assert dyn.pair_keys() == {(0, 0)}
        dyn.insert(Point(50, 0, 1), "P")
        assert dyn.pair_keys() == {(1, 0)}

    def test_insert_q_side(self):
        dyn = DynamicRCJ([Point(0, 0, 0)], [Point(100, 0, 0)])
        dyn.insert(Point(50, 0, 1), "Q")
        assert dyn.pair_keys() == {(0, 1)}

    def test_insert_far_point_adds_pair_keeps_rest(self):
        ps = uniform(80, seed=102)
        qs = uniform(80, seed=103, start_oid=1000)
        dyn = DynamicRCJ(ps, qs)
        z = Point(9999.5, 9999.5, 500)
        dyn.insert(z, "P")
        assert dyn.pair_keys() == _oracle_keys(ps + [z], qs)

    def test_insert_sequence_matches_oracle(self):
        rng = random.Random(5)
        ps = uniform(40, seed=104)
        qs = uniform(40, seed=105, start_oid=1000)
        dyn = DynamicRCJ(ps, qs)
        for i in range(30):
            pt = Point(rng.uniform(0, 10000), rng.uniform(0, 10000), 2000 + i)
            if rng.random() < 0.5:
                ps = ps + [pt]
                dyn.insert(pt, "P")
            else:
                qs = qs + [pt]
                dyn.insert(pt, "Q")
            assert dyn.pair_keys() == _oracle_keys(ps, qs)

    def test_insert_coincident_duplicate(self):
        ps = [Point(100, 100, 0)]
        qs = [Point(200, 200, 0)]
        dyn = DynamicRCJ(ps, qs)
        dup = Point(100, 100, 1)
        dyn.insert(dup, "P")
        assert dyn.pair_keys() == _oracle_keys(ps + [dup], qs)


class TestDelete:
    def test_delete_missing_point_raises(self):
        dyn = DynamicRCJ(uniform(10, seed=0), uniform(10, seed=1, start_oid=100))
        with pytest.raises(KeyError, match="999"):
            dyn.delete(Point(-5, -5, 999), "P")

    def test_delete_removes_pairs_of_point(self):
        dyn = DynamicRCJ([Point(0, 0, 0)], [Point(100, 0, 0)])
        assert dyn.delete(Point(0, 0, 0), "P") is True
        assert len(dyn) == 0

    def test_delete_frees_blocked_pair(self):
        # p0 --- p1 --- q0 on a line: <p0, q0> is blocked by p1; after
        # deleting p1 the long pair appears.
        dyn = DynamicRCJ(
            [Point(0, 0, 0), Point(50, 0, 1)], [Point(100, 0, 0)]
        )
        assert dyn.pair_keys() == {(1, 0)}
        dyn.delete(Point(50, 0, 1), "P")
        assert dyn.pair_keys() == {(0, 0)}

    def test_delete_with_coincident_twin_frees_nothing(self):
        dyn = DynamicRCJ(
            [Point(50, 0, 0), Point(50, 0, 1)],
            [Point(0, 0, 0), Point(100, 0, 1)],
        )
        before = _oracle_keys(
            [Point(50, 0, 0), Point(50, 0, 1)],
            [Point(0, 0, 0), Point(100, 0, 1)],
        )
        assert dyn.pair_keys() == before
        dyn.delete(Point(50, 0, 1), "P")
        assert dyn.pair_keys() == _oracle_keys(
            [Point(50, 0, 0)], [Point(0, 0, 0), Point(100, 0, 1)]
        )

    def test_delete_sequence_matches_oracle(self):
        rng = random.Random(7)
        ps = uniform(50, seed=106)
        qs = uniform(50, seed=107, start_oid=1000)
        dyn = DynamicRCJ(ps, qs)
        for _ in range(35):
            if rng.random() < 0.5 and len(ps) > 1:
                victim = rng.choice(ps)
                ps = [p for p in ps if p.oid != victim.oid]
                assert dyn.delete(victim, "P")
            elif len(qs) > 1:
                victim = rng.choice(qs)
                qs = [q for q in qs if q.oid != victim.oid]
                assert dyn.delete(victim, "Q")
            assert dyn.pair_keys() == _oracle_keys(ps, qs)

    def test_delete_everything(self):
        ps = uniform(15, seed=108)
        qs = uniform(15, seed=109, start_oid=100)
        dyn = DynamicRCJ(ps, qs)
        for p in ps:
            assert dyn.delete(p, "P")
        for q in qs:
            assert dyn.delete(q, "Q")
        assert len(dyn) == 0
        assert len(dyn.tree_p) == 0 and len(dyn.tree_q) == 0


class TestMixedWorkload:
    def test_interleaved_updates_match_oracle(self):
        rng = random.Random(11)
        ps = uniform(30, seed=110)
        qs = uniform(30, seed=111, start_oid=1000)
        dyn = DynamicRCJ(ps, qs)
        next_oid = 5000
        for step in range(60):
            op = rng.random()
            if op < 0.4 or (len(ps) < 2 or len(qs) < 2):
                pt = Point(
                    rng.uniform(0, 10000), rng.uniform(0, 10000), next_oid
                )
                next_oid += 1
                if rng.random() < 0.5:
                    ps = ps + [pt]
                    dyn.insert(pt, "P")
                else:
                    qs = qs + [pt]
                    dyn.insert(pt, "Q")
            elif op < 0.7:
                victim = rng.choice(ps)
                ps = [p for p in ps if p.oid != victim.oid]
                assert dyn.delete(victim, "P")
            else:
                victim = rng.choice(qs)
                qs = [q for q in qs if q.oid != victim.oid]
                assert dyn.delete(victim, "Q")
            if step % 10 == 9:
                assert dyn.pair_keys() == _oracle_keys(ps, qs)
        assert dyn.pair_keys() == _oracle_keys(ps, qs)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),  # 0 insert-P, 1 insert-Q, 2 delete
                st.integers(0, 16).map(float),
                st.integers(0, 16).map(float),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_lattice_updates_match_oracle(self, ops):
        """Degenerate-coordinate updates (ties, duplicates) maintained
        exactly."""
        dyn = DynamicRCJ()
        ps: list[Point] = []
        qs: list[Point] = []
        next_oid = 0
        rng = random.Random(13)
        for kind, x, y in ops:
            if kind == 0:
                pt = Point(x, y, next_oid)
                next_oid += 1
                ps.append(pt)
                dyn.insert(pt, "P")
            elif kind == 1:
                pt = Point(x, y, next_oid)
                next_oid += 1
                qs.append(pt)
                dyn.insert(pt, "Q")
            else:
                pool = ps if (len(ps) > 0 and (len(qs) == 0 or rng.random() < 0.5)) else qs
                if not pool:
                    continue
                victim = rng.choice(pool)
                if pool is ps:
                    ps.remove(victim)
                    assert dyn.delete(victim, "P")
                else:
                    qs.remove(victim)
                    assert dyn.delete(victim, "Q")
        assert dyn.pair_keys() == _oracle_keys(ps, qs)

    def test_property_float_updates_match_oracle(self):
        rng = random.Random(17)
        for trial in range(8):
            ps = uniform(12, seed=300 + trial)
            qs = uniform(12, seed=400 + trial, start_oid=1000)
            dyn = DynamicRCJ(ps, qs)
            next_oid = 9000
            for _ in range(20):
                r = rng.random()
                if r < 0.45:
                    pt = Point(
                        rng.uniform(0, 10000), rng.uniform(0, 10000), next_oid
                    )
                    next_oid += 1
                    side = "P" if rng.random() < 0.5 else "Q"
                    if side == "P":
                        ps = ps + [pt]
                    else:
                        qs = qs + [pt]
                    dyn.insert(pt, side)
                elif r < 0.75 and len(ps) > 1:
                    victim = rng.choice(ps)
                    ps = [p for p in ps if p.oid != victim.oid]
                    assert dyn.delete(victim, "P")
                elif len(qs) > 1:
                    victim = rng.choice(qs)
                    qs = [q for q in qs if q.oid != victim.oid]
                    assert dyn.delete(victim, "Q")
                assert dyn.pair_keys() == _oracle_keys(ps, qs)
