"""Unit tests for the incremental / top-k RCJ."""

import itertools

from repro.core.brute import brute_force_rcj
from repro.core.topk import incremental_rcj, top_k_rcj
from repro.datasets.synthetic import uniform
from repro.rtree.bulk import bulk_load


def build(n_p=150, n_q=130, seed_p=1, seed_q=2):
    points_p = uniform(n_p, seed=seed_p)
    points_q = uniform(n_q, seed=seed_q, start_oid=n_p)
    return (
        points_p,
        points_q,
        bulk_load(points_p, name="TP"),
        bulk_load(points_q, name="TQ"),
    )


class TestIncrementalRCJ:
    def test_ascending_diameter(self):
        _, _, tree_p, tree_q = build()
        diameters = [
            pair.diameter
            for pair in itertools.islice(incremental_rcj(tree_p, tree_q), 50)
        ]
        assert diameters == sorted(diameters)

    def test_full_enumeration_matches_oracle(self):
        points_p, points_q, tree_p, tree_q = build()
        got = {pair.key() for pair in incremental_rcj(tree_p, tree_q)}
        ref = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert got == ref

    def test_no_duplicates(self):
        _, _, tree_p, tree_q = build()
        keys = [pair.key() for pair in incremental_rcj(tree_p, tree_q)]
        assert len(keys) == len(set(keys))


class TestTopK:
    def test_k_zero(self):
        _, _, tree_p, tree_q = build()
        assert top_k_rcj(tree_p, tree_q, 0) == []

    def test_top_k_are_global_minima(self):
        points_p, points_q, tree_p, tree_q = build()
        ref = sorted(
            brute_force_rcj(points_p, points_q), key=lambda r: r.diameter
        )
        got = top_k_rcj(tree_p, tree_q, 10)
        assert [p.diameter for p in got] == [
            r.diameter for r in ref[:10]
        ]

    def test_k_exceeds_result_size(self):
        points_p, points_q, tree_p, tree_q = build(n_p=30, n_q=25)
        ref = brute_force_rcj(points_p, points_q)
        got = top_k_rcj(tree_p, tree_q, 10_000)
        assert len(got) == len(ref)

    def test_lazy_behaviour(self):
        # Small k should read far fewer nodes than the full join.
        _, _, tree_p, tree_q = build(n_p=1500, n_q=1500, seed_p=5, seed_q=6)
        tree_p.reset_stats()
        tree_q.reset_stats()
        top_k_rcj(tree_p, tree_q, 5)
        few = tree_p.node_accesses + tree_q.node_accesses

        tree_p.reset_stats()
        tree_q.reset_stats()
        for _ in incremental_rcj(tree_p, tree_q):
            pass
        all_cost = tree_p.node_accesses + tree_q.node_accesses
        assert few < all_cost / 10

    def test_self_join_mode(self):
        points = uniform(100, seed=9)
        tree = bulk_load(points)
        pairs = top_k_rcj(tree, tree, 20, exclude_same_oid=True)
        assert pairs
        assert all(p.p.oid != p.q.oid for p in pairs)

    def test_stops_pulling_at_kth_verified_pair(self, monkeypatch):
        # The candidate stream must not advance a single candidate past
        # the k-th verified pair, and must be closed at that point (no
        # half-open generator left to expand heap nodes on GC whims).
        import repro.core.topk as topk_mod

        state = {"pulls": 0, "closed": False}
        original = topk_mod.incremental_closest_pairs

        def counting(tree_p, tree_q):
            try:
                for item in original(tree_p, tree_q):
                    state["pulls"] += 1
                    yield item
            finally:
                state["closed"] = True

        monkeypatch.setattr(topk_mod, "incremental_closest_pairs", counting)
        _, _, tree_p, tree_q = build(n_p=400, n_q=400, seed_p=3, seed_q=4)
        k = 12
        got = topk_mod.top_k_rcj(tree_p, tree_q, k)
        assert len(got) == k
        assert state["closed"]

        # Expected pulls: candidates up to and including the k-th
        # verified pair — replayed on the untouched stream.
        verified = 0
        expected = 0
        for _dist, p, q in original(tree_p, tree_q):
            expected += 1
            candidate = topk_mod.Candidate(p, q)
            topk_mod.verify_circles(tree_p, [candidate])
            if candidate.alive:
                topk_mod.verify_circles(tree_q, [candidate])
            if candidate.alive:
                verified += 1
                if verified == k:
                    break
        assert state["pulls"] == expected
