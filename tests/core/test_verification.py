"""Unit and property tests for the Verification step (Algorithm 3)."""

from hypothesis import given, settings

from repro.core.pairs import Candidate
from repro.core.verification import verify_circles
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load

from tests.conftest import lattice_pointset, make_points


def survivors(tree, candidates):
    verify_circles(tree, candidates)
    return {c.p.oid for c in candidates if c.alive}


class TestVerifyBasics:
    def test_empty_candidate_set(self):
        tree = bulk_load([Point(0, 0, 0)])
        verify_circles(tree, [])  # no crash

    def test_point_inside_kills_candidate(self):
        # Paper Figure 7b: a point inside the circle prunes the pair.
        tree = bulk_load([Point(5, 1, 7)])
        cand = Candidate(Point(0, 0, 0), Point(10, 0, 1))
        verify_circles(tree, [cand])
        assert not cand.alive

    def test_disjoint_data_keeps_candidate(self):
        # Paper Figure 7c: disjoint entries are irrelevant.
        tree = bulk_load([Point(100, 100, 7)])
        cand = Candidate(Point(0, 0, 0), Point(10, 0, 1))
        verify_circles(tree, [cand])
        assert cand.alive

    def test_endpoint_itself_never_kills(self):
        # p is in TP and lies on its own circle boundary.
        p = Point(0, 0, 0)
        tree = bulk_load([p])
        cand = Candidate(p, Point(10, 0, 1))
        verify_circles(tree, [cand])
        assert cand.alive

    def test_boundary_point_does_not_kill(self):
        tree = bulk_load([Point(5, 5, 7)])  # exactly on the circle
        cand = Candidate(Point(0, 0, 0), Point(10, 0, 1))
        verify_circles(tree, [cand])
        assert cand.alive

    def test_dead_candidates_skipped(self):
        tree = bulk_load([Point(5, 0, 7)])
        cand = Candidate(Point(0, 0, 0), Point(10, 0, 1))
        cand.alive = False
        verify_circles(tree, [cand])
        assert not cand.alive

    def test_zero_radius_candidate_survives_everything(self):
        tree = bulk_load([Point(i, i, i) for i in range(20)])
        cand = Candidate(Point(3, 3, 100), Point(3, 3, 101))
        verify_circles(tree, [cand])
        assert cand.alive

    def test_many_candidates_mixed_outcome(self, uniform_points):
        tree = bulk_load(uniform_points)
        good = Candidate(Point(-100, -100, 200), Point(-101, -101, 201))
        bad = Candidate(Point(0, 0, 202), Point(10000, 10000, 203))
        verify_circles(tree, [good, bad])
        assert good.alive
        assert not bad.alive


class TestSweepPathEquivalence:
    """The plane-sweep fast path must agree with the nested loop."""

    @given(
        lattice_pointset(min_size=1, max_size=40),
        lattice_pointset(min_size=2, max_size=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_sweep_matches_naive(self, data_coords, cand_coords):
        data = make_points(data_coords)
        tree = bulk_load(data, page_size=128)
        # Candidate circles from consecutive coordinate pairs.
        cand_pts = make_points(cand_coords, start_oid=500)
        pairs = list(zip(cand_pts[::2], cand_pts[1::2]))
        if not pairs:
            return

        from repro.core import verification

        naive = [Candidate(a, b) for a, b in pairs]
        old_threshold = verification._SWEEP_THRESHOLD
        try:
            verification._SWEEP_THRESHOLD = 10**9  # force naive
            verify_circles(tree, naive)
            swept = [Candidate(a, b) for a, b in pairs]
            verification._SWEEP_THRESHOLD = 0  # force sweep
            verify_circles(tree, swept)
        finally:
            verification._SWEEP_THRESHOLD = old_threshold
        assert [c.alive for c in naive] == [c.alive for c in swept]


class TestVerifyAgainstLinearScan:
    @given(
        lattice_pointset(min_size=1, max_size=30),
        lattice_pointset(min_size=2, max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_alive_iff_circle_empty(self, data_coords, cand_coords):
        data = make_points(data_coords)
        tree = bulk_load(data, page_size=128)
        cand_pts = make_points(cand_coords, start_oid=500)
        cands = [
            Candidate(a, b) for a, b in zip(cand_pts[::2], cand_pts[1::2])
        ]
        verify_circles(tree, cands)
        for c in cands:
            expected = not any(
                c.circle.contains_point(p.x, p.y) for p in data
            )
            assert c.alive == expected
