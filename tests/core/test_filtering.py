"""Unit and property tests for the Filter step (Algorithm 2)."""

from hypothesis import given, settings

from repro.core.brute import brute_force_rcj
from repro.core.filtering import filter_candidates
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load

from tests.conftest import lattice_pointset, make_points


class TestFilterBasics:
    def test_empty_tree(self):
        from repro.rtree.tree import RTree

        assert filter_candidates(Point(0, 0, 0), RTree()) == []

    def test_single_point_is_candidate(self):
        tree = bulk_load([Point(10, 10, 0)])
        got = filter_candidates(Point(0, 0, 99), tree)
        assert [p.oid for p in got] == [0]

    def test_candidates_in_ascending_distance(self, uniform_points):
        tree = bulk_load(uniform_points)
        q = Point(5000, 5000, -1)
        cands = filter_candidates(q, tree)
        dists = [q.dist_to(p) for p in cands]
        assert dists == sorted(dists)

    def test_nearest_point_always_survives(self, uniform_points):
        # The nearest P point can never be pruned (nothing discovered
        # before it) and always forms a valid pair with q.
        tree = bulk_load(uniform_points)
        q = Point(3333, 7777, -1)
        cands = filter_candidates(q, tree)
        nearest = min(uniform_points, key=q.dist_sq_to)
        assert cands[0].oid == nearest.oid

    def test_shadowed_point_pruned(self):
        # p' directly behind p (from q) lies in Psi-minus(q, p).
        q = Point(0, 0, -1)
        p = Point(10, 0, 0)
        shadowed = Point(20, 0, 1)
        tree = bulk_load([p, shadowed])
        got = {c.oid for c in filter_candidates(q, tree)}
        assert got == {0}

    def test_point_on_boundary_line_kept(self):
        # p' exactly on L(q, p): strict semantics keep it.
        q = Point(0, 0, -1)
        p = Point(10, 0, 0)
        on_line = Point(10, 7, 1)
        tree = bulk_load([p, on_line])
        got = {c.oid for c in filter_candidates(q, tree)}
        assert got == {0, 1}

    def test_extra_prune_points_shrink_candidates(self, uniform_points):
        tree = bulk_load(uniform_points)
        q = Point(5000, 5000, -1)
        base = filter_candidates(q, tree)
        # Use the nearest point of P itself as a symmetric-style pruner.
        helper = min(uniform_points, key=q.dist_sq_to)
        pruned = filter_candidates(q, tree, extra_prune_points=[helper])
        assert len(pruned) <= len(base)

    def test_degenerate_extra_prune_point_ignored(self):
        q = Point(5, 5, -1)
        tree = bulk_load([Point(7, 7, 0)])
        got = filter_candidates(q, tree, extra_prune_points=[Point(5, 5, 42)])
        assert [p.oid for p in got] == [0]

    def test_exclude_same_oid(self):
        tree = bulk_load([Point(5, 5, 7), Point(9, 9, 8)])
        got = {
            p.oid
            for p in filter_candidates(
                Point(5, 5, 7), tree, exclude_same_oid=True
            )
        }
        assert 7 not in got


class TestFilterCompleteness:
    """The filter may over-approximate but must never lose a true pair
    (Lemma 4: no false negatives)."""

    @given(
        lattice_pointset(min_size=1, max_size=24),
        lattice_pointset(min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_candidates_superset_of_true_pairs(self, coords_p, coords_q):
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        tree_p = bulk_load(points_p, page_size=128)
        truth = {r.key() for r in brute_force_rcj(points_p, points_q)}
        for q in points_q:
            true_partners = {p for p, qq in truth if qq == q.oid}
            got = {p.oid for p in filter_candidates(q, tree_p)}
            assert true_partners <= got
