"""Unit tests for the join cost accounting."""

import pytest

from repro.core.accounting import JoinAccounting
from repro.core.pairs import JoinReport
from repro.datasets.synthetic import uniform
from repro.geometry.rect import Rect
from repro.rtree.bulk import bulk_load
from repro.storage.buffer import BufferManager
from repro.storage.stats import CostModel


@pytest.fixture
def trees():
    tree_a = bulk_load(uniform(300, seed=1), name="A")
    tree_b = bulk_load(uniform(300, seed=2), name="B")
    buf = BufferManager(16)
    tree_a.attach_buffer(buf)
    tree_b.attach_buffer(buf)
    return tree_a, tree_b, buf


class TestJoinAccounting:
    def test_counts_only_delta(self, trees):
        tree_a, tree_b, _ = trees
        tree_a.range_search(Rect(0, 0, 10000, 10000))  # pre-existing work
        acc = JoinAccounting("X", [tree_a, tree_b])
        tree_a.range_search(Rect(0, 0, 5000, 5000))
        report = acc.finish(JoinReport("X"))
        assert 0 < report.node_accesses < tree_a.disk.num_pages + 1

    def test_shared_buffer_counted_once(self, trees):
        tree_a, tree_b, buf = trees
        acc = JoinAccounting("X", [tree_a, tree_b])
        tree_a.range_search(Rect(0, 0, 10000, 10000))
        tree_b.range_search(Rect(0, 0, 10000, 10000))
        report = acc.finish(JoinReport("X"))
        total_pages = tree_a.disk.num_pages + tree_b.disk.num_pages
        assert report.page_faults == total_pages  # not double

    def test_cost_model_applied(self, trees):
        tree_a, tree_b, _ = trees
        model = CostModel(ms_per_fault=20.0, ms_per_node_access=1.0)
        acc = JoinAccounting("X", [tree_a, tree_b], cost_model=model)
        tree_a.range_search(Rect(0, 0, 10000, 10000))
        report = acc.finish(JoinReport("X"))
        assert report.io_seconds == pytest.approx(report.page_faults * 0.020)
        assert report.modeled_cpu_seconds == pytest.approx(
            report.node_accesses * 0.001
        )

    def test_wall_clock_positive(self, trees):
        tree_a, tree_b, _ = trees
        acc = JoinAccounting("X", [tree_a, tree_b])
        report = acc.finish(JoinReport("X"))
        assert report.cpu_seconds >= 0

    def test_no_buffer_trees(self):
        tree = bulk_load(uniform(100, seed=3))
        acc = JoinAccounting("X", [tree, tree])
        tree.range_search(Rect(0, 0, 10000, 10000))
        report = acc.finish(JoinReport("X"))
        assert report.page_faults == 0  # no buffer attached
        assert report.node_accesses > 0

    def test_algorithm_label_set(self, trees):
        tree_a, tree_b, _ = trees
        acc = JoinAccounting("MYALGO", [tree_a, tree_b])
        report = acc.finish(JoinReport("placeholder"))
        assert report.algorithm == "MYALGO"
