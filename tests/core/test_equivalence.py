"""Property-based equivalence of every RCJ algorithm with the oracle.

These are the strongest correctness tests in the suite: on adversarial
lattice pointsets (duplicates, collinear runs, cocircular squares), and
on tiny page sizes that force multi-level trees, all R-tree algorithms
must reproduce the brute-force result *exactly* — no false positives,
no false negatives, no duplicates (the paper's Lemma 4).
"""

from hypothesis import given, settings

from repro.core.bij import bij
from repro.core.brute import brute_force_rcj
from repro.core.gabriel import gabriel_rcj
from repro.core.inj import inj
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.buffer import BufferManager

from tests.conftest import (
    continuous_pointset,
    lattice_pointset,
    make_points,
)


def rtree_results(points_p, points_q, build, page_size=128, buffer_pages=4):
    """Run INJ, BIJ and OBJ over freshly built trees."""
    if build == "bulk":
        tree_p = bulk_load(points_p, page_size=page_size, name="TP")
        tree_q = bulk_load(points_q, page_size=page_size, name="TQ")
    else:
        tree_p = RTree(page_size=page_size, name="TP")
        tree_q = RTree(page_size=page_size, name="TQ")
        for p in points_p:
            tree_p.insert(p)
        for q in points_q:
            tree_q.insert(q)
    buf = BufferManager(buffer_pages)
    tree_p.attach_buffer(buf)
    tree_q.attach_buffer(buf)
    return {
        "INJ": inj(tree_q, tree_p).pair_keys(),
        "BIJ": bij(tree_q, tree_p).pair_keys(),
        "OBJ": bij(tree_q, tree_p, symmetric=True).pair_keys(),
    }


class TestLatticeEquivalence:
    @given(
        lattice_pointset(min_size=1, max_size=28),
        lattice_pointset(min_size=1, max_size=28),
    )
    @settings(max_examples=40, deadline=None)
    def test_bulk_trees_match_oracle(self, coords_p, coords_q):
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        for name, got in rtree_results(points_p, points_q, "bulk").items():
            assert got == expected, name

    @given(
        lattice_pointset(min_size=1, max_size=20),
        lattice_pointset(min_size=1, max_size=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_insert_built_trees_match_oracle(self, coords_p, coords_q):
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        for name, got in rtree_results(points_p, points_q, "insert").items():
            assert got == expected, name

    @given(
        lattice_pointset(min_size=1, max_size=24),
        lattice_pointset(min_size=1, max_size=24),
    )
    @settings(max_examples=30, deadline=None)
    def test_gabriel_sound_on_degenerate_data(self, coords_p, coords_q):
        # On degenerate (cocircular) data the Delaunay-based algorithm
        # may miss boundary-tied pairs but must never invent one.
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        got = {r.key() for r in gabriel_rcj(points_p, points_q)}
        assert got <= expected


class TestContinuousEquivalence:
    @given(
        continuous_pointset(min_size=1, max_size=40),
        continuous_pointset(min_size=1, max_size=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_algorithms_on_general_position_data(self, coords_p, coords_q):
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        for name, got in rtree_results(points_p, points_q, "bulk").items():
            assert got == expected, name
        # Gabriel is exact only in general position; adversarial floats
        # can sit within Qhull's merge tolerance, so assert soundness
        # here (exactness is tested on seeded random data in
        # test_gabriel.py).
        assert {r.key() for r in gabriel_rcj(points_p, points_q)} <= expected


class TestStructuralProperties:
    @given(lattice_pointset(min_size=2, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_nearest_pair_always_in_result(self, coords):
        # The globally closest P/Q pair has an empty circle.
        pts = make_points(coords)
        half = len(pts) // 2
        points_p, points_q = pts[:half], pts[half:]
        if not points_p or not points_q:
            return
        result = {r.key() for r in brute_force_rcj(points_p, points_q)}
        best = min(
            ((p, q) for p in points_p for q in points_q),
            key=lambda pq: pq[0].dist_sq_to(pq[1]),
        )
        assert (best[0].oid, best[1].oid) in result

    @given(
        lattice_pointset(min_size=1, max_size=15),
        lattice_pointset(min_size=1, max_size=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_global_nearest_neighbour_pairs_join(self, coords_p, coords_q):
        # When q's nearest P point is at least as close as every other
        # Q point, that pair is always valid: any blocker strictly
        # inside the circle would be strictly closer to q than p is.
        # (q's nearest *P* point alone is NOT guaranteed to pair — a
        # strictly nearer Q point can block it.)
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        result = {r.key() for r in brute_force_rcj(points_p, points_q)}
        for q in points_q:
            nearest_p = min(points_p, key=q.dist_sq_to)
            d_p = q.dist_sq_to(nearest_p)
            d_q = min(
                (q.dist_sq_to(x) for x in points_q if x is not q),
                default=float("inf"),
            )
            if d_p <= d_q:
                assert (nearest_p.oid, q.oid) in result

    @given(
        lattice_pointset(min_size=1, max_size=20),
        lattice_pointset(min_size=1, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_join_is_symmetric(self, coords_p, coords_q):
        # RCJ is symmetric: swapping P and Q transposes the result.
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        forward = {r.key() for r in brute_force_rcj(points_p, points_q)}
        backward = {
            (p, q) for q, p in (r.key() for r in brute_force_rcj(points_q, points_p))
        }
        assert forward == backward
