"""Unit tests for BIJ and OBJ (Algorithms 6/7 + Lemma 5 optimisation)."""

import pytest

from repro.core.bij import bij, bulk_filter
from repro.core.brute import brute_force_rcj
from repro.core.inj import inj
from repro.core.obj import obj
from repro.datasets.synthetic import gaussian_clusters, uniform
from repro.rtree.bulk import bulk_load
from repro.storage.buffer import buffer_for_trees


@pytest.fixture
def workload():
    points_p = uniform(400, seed=10)
    points_q = uniform(300, seed=20, start_oid=400)
    tree_p = bulk_load(points_p, name="TP")
    tree_q = bulk_load(points_q, name="TQ")
    buf = buffer_for_trees([tree_p, tree_q], 0.05)
    tree_p.attach_buffer(buf)
    tree_q.attach_buffer(buf)
    return points_p, points_q, tree_p, tree_q, buf


class TestCorrectness:
    def test_bij_matches_oracle(self, workload):
        points_p, points_q, tree_p, tree_q, _ = workload
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert bij(tree_q, tree_p).pair_keys() == expected

    def test_obj_matches_oracle(self, workload):
        points_p, points_q, tree_p, tree_q, _ = workload
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert obj(tree_q, tree_p).pair_keys() == expected

    def test_obj_is_bij_with_symmetric_flag(self, workload):
        _, _, tree_p, tree_q, _ = workload
        a = bij(tree_q, tree_p, symmetric=True)
        b = obj(tree_q, tree_p)
        assert a.pair_keys() == b.pair_keys()
        assert a.candidate_count == b.candidate_count

    def test_skewed_data(self):
        points_p = gaussian_clusters(500, w=3, seed=5)
        points_q = gaussian_clusters(400, w=7, seed=6, start_oid=500)
        tree_p = bulk_load(points_p)
        tree_q = bulk_load(points_q)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert bij(tree_q, tree_p).pair_keys() == expected
        assert obj(tree_q, tree_p).pair_keys() == expected

    def test_report_labels(self, workload):
        _, _, tree_p, tree_q, _ = workload
        assert bij(tree_q, tree_p).algorithm == "BIJ"
        assert obj(tree_q, tree_p).algorithm == "OBJ"


class TestBulkFilter:
    def test_candidates_cover_filter_per_point(self, workload):
        # Every true pair partner appears in the bulk candidate set.
        points_p, points_q, tree_p, tree_q, _ = workload
        truth = {r.key() for r in brute_force_rcj(points_p, points_q)}
        leaf = tree_q.read_node(tree_q.leaf_pids()[0])
        group = list(leaf.entries)
        sets = bulk_filter(group, tree_p)
        for q in group:
            partners = {p for p, qq in truth if qq == q.oid}
            assert partners <= {p.oid for p in sets[q]}

    def test_symmetric_never_larger(self, workload):
        _, _, tree_p, tree_q, _ = workload
        leaf = tree_q.read_node(tree_q.leaf_pids()[0])
        group = list(leaf.entries)
        plain = bulk_filter(group, tree_p, symmetric=False)
        symmetric = bulk_filter(group, tree_p, symmetric=True)
        total_plain = sum(len(v) for v in plain.values())
        total_sym = sum(len(v) for v in symmetric.values())
        assert total_sym <= total_plain

    def test_empty_group(self, workload):
        _, _, tree_p, _, _ = workload
        assert bulk_filter([], tree_p) == {}


class TestPaperOrderings:
    """Table 4's orderings: BIJ >= INJ >= OBJ on candidates; BIJ/OBJ
    traverse far fewer nodes than INJ."""

    def test_candidate_ordering(self, workload):
        _, _, tree_p, tree_q, _ = workload
        c_inj = inj(tree_q, tree_p).candidate_count
        c_bij = bij(tree_q, tree_p).candidate_count
        c_obj = obj(tree_q, tree_p).candidate_count
        assert c_bij >= c_inj >= c_obj

    def test_obj_candidates_close_to_result(self, workload):
        _, _, tree_p, tree_q, _ = workload
        report = obj(tree_q, tree_p)
        # Paper: OBJ's candidate set "stays very close to the actual
        # number of RCJ results" (within ~2x at their scale).
        assert report.candidate_count <= 3 * report.result_count

    def test_bulk_reduces_node_accesses(self, workload):
        _, _, tree_p, tree_q, _ = workload
        n_inj = inj(tree_q, tree_p).node_accesses
        n_bij = bij(tree_q, tree_p).node_accesses
        n_obj = obj(tree_q, tree_p).node_accesses
        assert n_bij < n_inj / 2
        # OBJ prunes at least as much as BIJ overall; allow a tiny
        # wobble because different pruning can reroute the descent.
        assert n_obj <= n_bij * 1.05 + 2


class TestVerificationToggle:
    def test_bij_without_verification_superset(self, workload):
        _, _, tree_p, tree_q, _ = workload
        full = bij(tree_q, tree_p, verify=True)
        nofilter = bij(tree_q, tree_p, verify=False)
        assert full.pair_keys() <= nofilter.pair_keys()
