"""Unit tests for the self-RCJ (the postboxes application)."""

import pytest

from repro.core.selfjoin import self_rcj
from repro.datasets.synthetic import uniform
from repro.geometry.point import Point


class TestSelfJoin:
    def test_requires_unique_oids(self):
        with pytest.raises(ValueError, match="unique oids"):
            self_rcj([Point(0, 0, 1), Point(1, 1, 1)])

    def test_no_self_pairs(self):
        pts = uniform(100, seed=3)
        for pair in self_rcj(pts, algorithm="obj"):
            assert pair.p.oid != pair.q.oid

    def test_pairs_reported_once_ordered(self):
        pts = uniform(150, seed=4)
        pairs = self_rcj(pts, algorithm="obj")
        keys = [p.key() for p in pairs]
        assert len(keys) == len(set(keys))
        for a, b in keys:
            assert a < b

    def test_all_algorithms_agree(self):
        pts = uniform(120, seed=5)
        reference = {p.key() for p in self_rcj(pts, algorithm="brute")}
        for algorithm in ("inj", "bij", "obj", "gabriel"):
            got = {p.key() for p in self_rcj(pts, algorithm=algorithm)}
            assert got == reference, algorithm

    def test_two_points_always_pair(self):
        pairs = self_rcj([Point(0, 0, 0), Point(10, 10, 1)])
        assert [p.key() for p in pairs] == [(0, 1)]

    def test_is_gabriel_graph_edge_count(self):
        # The self-RCJ is the Gabriel graph: planar, so at most 3n - 8
        # edges (n >= 3).
        pts = uniform(400, seed=6)
        pairs = self_rcj(pts, algorithm="obj")
        assert len(pairs) <= 3 * len(pts) - 8

    def test_connectivity(self):
        # Gabriel graphs contain the Euclidean MST, hence are connected.
        import networkx as nx

        pts = uniform(150, seed=7)
        pairs = self_rcj(pts, algorithm="obj")
        graph = nx.Graph()
        graph.add_nodes_from(p.oid for p in pts)
        graph.add_edges_from(pair.key() for pair in pairs)
        assert nx.is_connected(graph)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown self-join algorithm"):
            self_rcj(uniform(10, seed=1), algorithm="fast")

    def test_prebuilt_tree_used(self):
        from repro.rtree.bulk import bulk_load

        pts = uniform(80, seed=8)
        tree = bulk_load(pts)
        tree.reset_stats()
        pairs = self_rcj(pts, algorithm="obj", tree=tree)
        assert tree.node_accesses > 0  # the provided index did the work
        assert pairs
