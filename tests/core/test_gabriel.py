"""Unit tests for the Delaunay/Gabriel-graph RCJ comparator."""

import random

from repro.core.brute import brute_force_rcj
from repro.core.gabriel import gabriel_rcj
from repro.geometry.point import Point


def random_points(n, seed, start_oid=0, span=10000.0):
    rng = random.Random(seed)
    return [
        Point(rng.uniform(0, span), rng.uniform(0, span), start_oid + i)
        for i in range(n)
    ]


class TestExactnessOnRandomData:
    def test_matches_oracle_small(self):
        p = random_points(40, seed=1)
        q = random_points(35, seed=2, start_oid=100)
        assert {r.key() for r in gabriel_rcj(p, q)} == {
            r.key() for r in brute_force_rcj(p, q)
        }

    def test_matches_oracle_many_seeds(self):
        for seed in range(8):
            p = random_points(60, seed=seed * 2 + 1)
            q = random_points(50, seed=seed * 2 + 2, start_oid=1000)
            got = {r.key() for r in gabriel_rcj(p, q)}
            ref = {r.key() for r in brute_force_rcj(p, q)}
            assert got == ref, f"seed {seed}"

    def test_skewed_cardinalities(self):
        p = random_points(150, seed=5)
        q = random_points(10, seed=6, start_oid=500)
        assert {r.key() for r in gabriel_rcj(p, q)} == {
            r.key() for r in brute_force_rcj(p, q)
        }


class TestDegenerateInputs:
    def test_empty_sets(self):
        assert gabriel_rcj([], random_points(5, 1)) == []
        assert gabriel_rcj(random_points(5, 1), []) == []

    def test_single_pair(self):
        got = gabriel_rcj([Point(0, 0, 0)], [Point(5, 5, 1)])
        assert [r.key() for r in got] == [(0, 1)]

    def test_two_distinct_sites_brute_fallback(self):
        # Fewer than 4 distinct coordinates: the brute path runs.
        p = [Point(0, 0, 0), Point(0, 0, 1)]
        q = [Point(5, 0, 2)]
        got = {r.key() for r in gabriel_rcj(p, q)}
        assert got == {(0, 2), (1, 2)}

    def test_all_collinear_falls_back(self):
        # Collinear sites make Qhull fail; the brute fallback must kick
        # in and produce the exact result.
        p = [Point(i, 0, i) for i in range(6)]
        q = [Point(i + 0.5, 0, 100 + i) for i in range(6)]
        got = {r.key() for r in gabriel_rcj(p, q)}
        ref = {r.key() for r in brute_force_rcj(p, q)}
        assert got == ref

    def test_coincident_cross_set_points(self):
        p = [Point(3, 3, 0), Point(8, 1, 1), Point(0, 9, 2), Point(9, 9, 3)]
        q = [Point(3, 3, 10), Point(5, 5, 11), Point(1, 1, 12), Point(7, 3, 13)]
        got = {r.key() for r in gabriel_rcj(p, q)}
        ref = {r.key() for r in brute_force_rcj(p, q)}
        assert got == ref
        assert (0, 10) in got  # the coincident pair (radius zero)

    def test_duplicate_heavy_input(self):
        rng = random.Random(3)
        coords = [(rng.randint(0, 5), rng.randint(0, 5)) for _ in range(30)]
        p = [Point(x, y, i) for i, (x, y) in enumerate(coords[:15])]
        q = [Point(x, y, 100 + i) for i, (x, y) in enumerate(coords[15:])]
        got = {r.key() for r in gabriel_rcj(p, q)}
        ref = {r.key() for r in brute_force_rcj(p, q)}
        # Lattice data is degenerate: the comparator must stay sound.
        assert got <= ref

    def test_exclude_same_oid(self):
        pts = random_points(30, seed=9)
        got = {r.key() for r in gabriel_rcj(pts, pts, exclude_same_oid=True)}
        assert all(a != b for a, b in got)
        ref = {
            r.key() for r in brute_force_rcj(pts, pts, exclude_same_oid=True)
        }
        assert got == ref


class TestScaling:
    def test_larger_input_consistency_with_rtree_algorithms(self):
        from repro.core.bij import bij
        from repro.rtree.bulk import bulk_load

        p = random_points(2000, seed=11)
        q = random_points(2000, seed=12, start_oid=5000)
        tree_p = bulk_load(p)
        tree_q = bulk_load(q)
        got = {r.key() for r in gabriel_rcj(p, q)}
        ref = bij(tree_q, tree_p, symmetric=True).pair_keys()
        assert got == ref


class TestCocircularTies:
    """Regression: tie-Gabriel edges outside the triangulation.

    On a unit lattice each cell's four corners are cocircular and BOTH
    crossing diagonals are valid RCJ pairs (the other two corners tie
    exactly on the ring boundary), but a Delaunay triangulation keeps
    only one diagonal per cell.  gabriel_rcj must recover the other via
    cocircular-cluster candidates."""

    def test_unit_cell_both_diagonals(self):
        from repro.geometry.point import Point

        ps = [Point(0, 0, 0), Point(1, 1, 1)]
        qs = [Point(1, 0, 0), Point(0, 1, 1)]
        got = {r.key() for r in gabriel_rcj(ps, qs)}
        expected = {r.key() for r in brute_force_rcj(ps, qs)}
        assert got == expected
        # All four side pairs and both diagonal pairings qualify.
        assert got == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_lattice_matches_brute(self):
        from repro.datasets.worstcase import lattice, split_alternating

        ps, qs = split_alternating(lattice(81))
        got = {r.key() for r in gabriel_rcj(ps, qs)}
        expected = {r.key() for r in brute_force_rcj(ps, qs)}
        assert got == expected

    def test_twelve_cocircular_lattice_points(self):
        """Points on the radius-5 lattice circle: larger cocircular
        cluster, still exact (diametral disks here are non-empty, so no
        diameter pairs — but the cluster scan must not invent any)."""
        from repro.geometry.point import Point

        ring12 = [
            (5, 0), (4, 3), (3, 4), (0, 5), (-3, 4), (-4, 3),
            (-5, 0), (-4, -3), (-3, -4), (0, -5), (3, -4), (4, -3),
        ]
        pts = [Point(x + 10, y + 10, i) for i, (x, y) in enumerate(ring12)]
        ps = pts[0::2]
        qs = [Point(p.x, p.y, i) for i, p in enumerate(pts[1::2])]
        ps = [Point(p.x, p.y, i) for i, p in enumerate(ps)]
        got = {r.key() for r in gabriel_rcj(ps, qs)}
        expected = {r.key() for r in brute_force_rcj(ps, qs)}
        assert got == expected
