"""Unit tests for RCJ result/accounting types."""

import math

from repro.core.pairs import Candidate, JoinReport, RCJPair
from repro.geometry.point import Point


class TestRCJPair:
    def test_circle_derived_from_endpoints(self):
        pair = RCJPair(Point(0, 0, 1), Point(4, 0, 2))
        assert pair.center == (2.0, 0.0)
        assert pair.radius == 2.0
        assert pair.diameter == 4.0

    def test_key_is_oid_pair(self):
        assert RCJPair(Point(0, 0, 5), Point(1, 1, 9)).key() == (5, 9)

    def test_center_is_fair(self):
        # Equidistant from both endpoints (the fairness property).
        pair = RCJPair(Point(1, 7, 0), Point(-3, 2, 1))
        cx, cy = pair.center
        dp = math.hypot(pair.p.x - cx, pair.p.y - cy)
        dq = math.hypot(pair.q.x - cx, pair.q.y - cy)
        assert math.isclose(dp, dq)
        assert math.isclose(dp, pair.radius)

    def test_equality_by_identity(self):
        a = RCJPair(Point(0, 0, 1), Point(1, 1, 2))
        b = RCJPair(Point(0, 0, 1), Point(1, 1, 2))
        assert a == b
        assert len({a, b}) == 1


class TestCandidate:
    def test_starts_alive(self):
        c = Candidate(Point(0, 0, 1), Point(2, 2, 2))
        assert c.alive

    def test_promotion_preserves_circle(self):
        c = Candidate(Point(0, 0, 1), Point(2, 0, 2))
        pair = c.to_pair()
        assert pair.circle is c.circle
        assert pair.key() == (1, 2)


class TestJoinReport:
    def test_counts_and_totals(self):
        report = JoinReport("X")
        report.pairs = [RCJPair(Point(0, 0, 1), Point(1, 1, 2))]
        report.cpu_seconds = 1.5
        report.io_seconds = 0.5
        assert report.result_count == 1
        assert report.total_seconds == 2.0

    def test_pair_keys(self):
        report = JoinReport("X")
        report.pairs = [
            RCJPair(Point(0, 0, 1), Point(1, 1, 2)),
            RCJPair(Point(0, 0, 3), Point(1, 1, 4)),
        ]
        assert report.pair_keys() == {(1, 2), (3, 4)}
