"""Unit tests for the brute-force oracle."""

from repro.core.brute import brute_candidate_count, brute_force_rcj
from repro.geometry.point import Point


class TestBruteForce:
    def test_empty_inputs(self):
        assert brute_force_rcj([], [Point(0, 0, 0)]) == []
        assert brute_force_rcj([Point(0, 0, 0)], []) == []

    def test_single_pair_always_joins(self):
        # With no other points the circle is trivially empty.
        res = brute_force_rcj([Point(0, 0, 0)], [Point(10, 10, 1)])
        assert [r.key() for r in res] == [(0, 1)]

    def test_paper_figure_1(self):
        """The worked example of Figure 1: P = {p1, p2}, Q = {q1, q2};
        result = {<p1,q1>, <p2,q1>, <p2,q2>} and <p1,q2> is excluded
        because its circle contains p2."""
        p1 = Point(0.15, 0.85, 1)
        p2 = Point(0.50, 0.50, 2)
        q1 = Point(0.30, 0.40, 11)
        q2 = Point(0.90, 0.45, 12)
        res = {r.key() for r in brute_force_rcj([p1, p2], [q1, q2])}
        assert res == {(1, 11), (2, 11), (2, 12)}

    def test_blocking_point_in_the_middle(self):
        p = Point(0, 0, 0)
        q = Point(10, 0, 1)
        blocker = Point(5, 1, 2)  # strictly inside the diameter circle
        res = brute_force_rcj([p, blocker], [q])
        keys = {r.key() for r in res}
        assert (0, 1) not in keys
        assert (2, 1) in keys  # blocker pairs with q itself

    def test_boundary_point_does_not_block(self):
        p = Point(0, 0, 0)
        q = Point(10, 0, 1)
        on_circle = Point(5, 5, 2)  # exactly on the circle boundary
        keys = {r.key() for r in brute_force_rcj([p, on_circle], [q])}
        assert (0, 1) in keys

    def test_coincident_cross_points_pair(self):
        # A P point and a Q point at the same location: radius-0 circle
        # contains nothing, so the pair is valid.
        keys = {
            r.key()
            for r in brute_force_rcj([Point(5, 5, 0)], [Point(5, 5, 1)])
        }
        assert keys == {(0, 1)}

    def test_duplicate_of_endpoint_does_not_block(self):
        # Duplicates of p sit on the boundary of the pair circle.
        p = Point(0, 0, 0)
        p_dup = Point(0, 0, 2)
        q = Point(4, 0, 1)
        keys = {r.key() for r in brute_force_rcj([p, p_dup], [q])}
        assert keys == {(0, 1), (2, 1)}

    def test_exclude_same_oid(self):
        pts = [Point(0, 0, 0), Point(1, 1, 1)]
        keys = {
            r.key() for r in brute_force_rcj(pts, pts, exclude_same_oid=True)
        }
        assert (0, 0) not in keys
        assert (1, 1) not in keys
        assert keys == {(0, 1), (1, 0)}

    def test_result_carries_circle(self):
        res = brute_force_rcj([Point(0, 0, 0)], [Point(4, 0, 1)])
        assert res[0].center == (2.0, 0.0)
        assert res[0].radius == 2.0


class TestBruteCandidateCount:
    def test_cartesian_product(self):
        assert brute_candidate_count(100, 200) == 20000

    def test_paper_table4_magnitude(self):
        # Table 4: SP candidates = |SC| x |PP| = 3.06e10.
        count = brute_candidate_count(172188, 177983)
        assert abs(count - 3.06e10) / 3.06e10 < 0.01
