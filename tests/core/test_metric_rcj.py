"""Unit tests for the metric-generalised RCJ (paper future work)."""

import random

import pytest

from repro.core.brute import brute_force_rcj
from repro.core.metric_rcj import metric_rcj
from repro.geometry.point import Point


def random_points(n, seed, start_oid=0, span=1000.0):
    rng = random.Random(seed)
    return [
        Point(rng.uniform(0, span), rng.uniform(0, span), start_oid + i)
        for i in range(n)
    ]


class TestEuclideanCoincidence:
    def test_l2_matches_standard_rcj(self):
        p = random_points(50, seed=1)
        q = random_points(45, seed=2, start_oid=100)
        got = {r.key() for r in metric_rcj(p, q, "l2")}
        ref = {r.key() for r in brute_force_rcj(p, q)}
        assert got == ref

    def test_l2_matches_on_multiple_seeds(self):
        for seed in range(4):
            p = random_points(35, seed=seed + 10)
            q = random_points(30, seed=seed + 50, start_oid=500)
            got = {r.key() for r in metric_rcj(p, q, "l2")}
            ref = {r.key() for r in brute_force_rcj(p, q)}
            assert got == ref, f"seed {seed}"


class TestAlternativeMetrics:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            metric_rcj([Point(0, 0, 0)], [Point(1, 1, 1)], "l7")

    def test_empty_inputs(self):
        assert metric_rcj([], [Point(0, 0, 0)], "l1") == []
        assert metric_rcj([Point(0, 0, 0)], [], "linf") == []

    def test_isolated_pair_joins_under_every_metric(self):
        p, q = [Point(0, 0, 0)], [Point(10, 3, 1)]
        for name in ("l1", "l2", "linf"):
            assert [r.key() for r in metric_rcj(p, q, name)] == [(0, 1)]

    def test_l1_blocking_differs_from_l2(self):
        # Blocker inside the L1 diamond but outside the L2 circle:
        # pair p=(0,0), q=(8,0): L1 ball = diamond around (4,0) radius 4;
        # L2 ball = circle radius 4.  Point (4.0, 3.5): L1 distance 3.5
        # (inside diamond); L2 distance 3.5 < 4 -- also inside.  Use
        # (6.5, 2.0): L1 = 4.5 > 4 outside diamond; L2 = 3.2 < 4 inside
        # circle.
        p = [Point(0, 0, 0), Point(6.5, 2.0, 1)]
        q = [Point(8, 0, 2)]
        l1_keys = {r.key() for r in metric_rcj(p, q, "l1")}
        l2_keys = {r.key() for r in metric_rcj(p, q, "l2")}
        assert (0, 2) in l1_keys  # diamond misses the blocker
        assert (0, 2) not in l2_keys  # circle catches it

    def test_linf_blocking_differs_from_l2(self):
        # Corner of the L-inf square not covered by the circle:
        # p=(0,0), q=(8,0): square radius 4 around (4,0) spans
        # [0,8]x[-4,4]; point (7.5, 3.5) is inside the square (linf
        # distance 3.5) but l2 distance 4.95 > 4, outside the circle.
        p = [Point(0, 0, 0), Point(7.5, 3.5, 1)]
        q = [Point(8, 0, 2)]
        linf_keys = {r.key() for r in metric_rcj(p, q, "linf")}
        l2_keys = {r.key() for r in metric_rcj(p, q, "l2")}
        assert (0, 2) not in linf_keys  # square catches the blocker
        assert (0, 2) in l2_keys

    def test_endpoints_never_block_any_metric(self):
        p = [Point(0, 0, 0)]
        q = [Point(6, 6, 1), Point(3, 3, 2)]
        for name in ("l1", "l2", "linf"):
            keys = {r.key() for r in metric_rcj(p, q, name)}
            # (0, 2) valid: midpoint ball of the tighter pair is empty.
            assert (0, 2) in keys

    def test_exclude_same_oid(self):
        pts = random_points(25, seed=3)
        keys = {r.key() for r in metric_rcj(pts, pts, "l1", exclude_same_oid=True)}
        assert all(a != b for a, b in keys)

    def test_matches_direct_ball_scan(self):
        # Independent O(n^3) check of the grid-backed implementation.
        from repro.geometry.metrics import get_metric

        p = random_points(25, seed=21)
        q = random_points(25, seed=22, start_oid=50)
        everyone = p + q
        for name in ("l1", "linf"):
            metric = get_metric(name)
            expected = set()
            for a in p:
                for b in q:
                    ball = metric.pair_ball(a, b)
                    if not any(
                        ball.contains_point(x.x, x.y) for x in everyone
                    ):
                        expected.add((a.oid, b.oid))
            got = {r.key() for r in metric_rcj(p, q, name)}
            assert got == expected, name
