"""Tests for the adversarial pointset families and the result-size
regimes they exhibit (the paper's future-work study)."""

import math

import pytest

from repro.core.brute import brute_force_rcj
from repro.datasets.worstcase import (
    cocircular,
    coincident,
    collinear,
    lattice,
    split_alternating,
    two_clusters,
)
from repro.evaluation.analysis import upper_bound_result_size
from repro.geometry.ring import Ring


def _gabriel_edge_count(points) -> int:
    """All (monochromatic + bichromatic) Gabriel edges, brute force."""
    n = len(points)
    edges = 0
    for i in range(n):
        for j in range(i + 1, n):
            ring = Ring.of_pair(points[i], points[j])
            if not any(
                ring.contains_point(z.x, z.y)
                for k, z in enumerate(points)
                if k != i and k != j
            ):
                edges += 1
    return edges


class TestGenerators:
    def test_collinear_even_spacing(self):
        pts = collinear(10)
        xs = [p.x for p in pts]
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert all(math.isclose(g, gaps[0]) for g in gaps)
        assert len({p.y for p in pts}) == 1

    def test_collinear_jitter(self):
        pts = collinear(10, jitter=5.0, seed=3)
        assert len({p.y for p in pts}) > 1

    def test_cocircular_on_circle(self):
        pts = cocircular(12, radius=1000.0)
        cx = cy = 5000.0
        for p in pts:
            assert math.isclose(math.hypot(p.x - cx, p.y - cy), 1000.0)

    def test_lattice_size_and_distinct(self):
        pts = lattice(50)
        assert len(pts) == 49  # largest full square <= 50
        assert len({(p.x, p.y) for p in pts}) == len(pts)

    def test_coincident_all_same(self):
        pts = coincident(7)
        assert len({(p.x, p.y) for p in pts}) == 1
        assert len({p.oid for p in pts}) == 7

    def test_two_clusters_bimodal(self):
        pts = two_clusters(200, separation=8000.0, spread=50.0, seed=1)
        left = [p for p in pts if p.x < 5000]
        right = [p for p in pts if p.x >= 5000]
        assert len(left) > 50 and len(right) > 50

    def test_split_alternating_renumbers(self):
        ps, qs = split_alternating(collinear(9))
        assert [p.oid for p in ps] == list(range(5))
        assert [q.oid for q in qs] == list(range(4))

    @pytest.mark.parametrize(
        "gen", [collinear, cocircular, lattice, coincident]
    )
    def test_negative_size_rejected(self, gen):
        with pytest.raises(ValueError):
            gen(-1)

    def test_empty_families(self):
        assert collinear(0) == []
        assert lattice(0) == []
        assert coincident(0) == []


class TestResultSizeRegimes:
    def test_collinear_rcj_is_the_path(self):
        """Alternating split of a line: exactly the adjacent pairs."""
        pts = collinear(21)
        ps, qs = split_alternating(pts)
        result = brute_force_rcj(ps, qs)
        assert len(result) == 20  # every adjacency is bichromatic

    def test_cocircular_regular_2m_gon_edges(self):
        """Strict convention on a regular 2m-gon: the 2m sides always
        qualify; the m diametral ties resolve by floating-point
        rounding, so the count stays within [2m, 3m]."""
        m = 8
        pts = cocircular(2 * m)
        edges = _gabriel_edge_count(pts)
        assert 2 * m <= edges <= 3 * m

    def test_cocircular_sides_always_qualify(self):
        """Adjacent-vertex rings have a real margin from the other
        vertices, immune to rounding."""
        pts = cocircular(16)
        n = len(pts)
        for i in range(n):
            j = (i + 1) % n
            ring = Ring.of_pair(pts[i], pts[j])
            assert not any(
                ring.contains_point(z.x, z.y)
                for k, z in enumerate(pts)
                if k != i and k != j
            )

    def test_lattice_breaks_planar_bound(self):
        """Cocircular unit cells put both crossing diagonals in the
        graph: the general-position bound 3N-6 is exceeded."""
        pts = lattice(49)
        edges = _gabriel_edge_count(pts)
        n = len(pts)
        assert edges > 3 * n - 6
        assert edges <= 4 * n  # the empirical lattice regime

    def test_coincident_result_is_quadratic(self):
        ps, qs = split_alternating(coincident(12))
        result = brute_force_rcj(ps, qs)
        assert len(result) == len(ps) * len(qs)
        assert len(result) == upper_bound_result_size(
            len(ps), len(qs), general_position=False
        )

    def test_general_position_bound_holds_on_uniform(self):
        from repro.datasets.synthetic import uniform

        ps = uniform(60, seed=90)
        qs = uniform(60, seed=91, start_oid=60)
        result = brute_force_rcj(ps, qs)
        assert len(result) <= upper_bound_result_size(60, 60)

    def test_two_clusters_result_mostly_intra_cluster(self):
        pts = two_clusters(120, separation=9000.0, spread=30.0, seed=2)
        ps, qs = split_alternating(pts)
        result = brute_force_rcj(ps, qs)
        bridging = [
            pair
            for pair in result
            if (pair.p.x < 5000) != (pair.q.x < 5000)
        ]
        # Giant bridging rings almost always swallow a third point;
        # only a couple of frontier pairs survive.
        assert len(result) > 10
        assert len(bridging) <= 4


class TestBulkCostModel:
    def test_bij_model_positive_and_below_inj(self):
        from repro.evaluation.analysis import (
            estimate_bij_node_accesses,
            estimate_inj_node_accesses,
            speedup_bij_over_inj,
        )

        inj_cost = estimate_inj_node_accesses(10_000, 10_000, 42, 25)
        bij_cost = estimate_bij_node_accesses(10_000, 10_000, 42, 25)
        assert 0 < bij_cost < inj_cost
        assert speedup_bij_over_inj(10_000, 10_000, 42, 25) > 1.0

    def test_models_zero_for_empty_inputs(self):
        from repro.evaluation.analysis import estimate_bij_node_accesses

        assert estimate_bij_node_accesses(0, 100, 42, 25) == 0.0
        assert estimate_bij_node_accesses(100, 0, 42, 25) == 0.0

    def test_bij_model_within_factor_three_of_measured(self):
        from repro.core.bij import bij
        from repro.datasets.synthetic import uniform
        from repro.evaluation.analysis import estimate_bij_node_accesses
        from repro.rtree.bulk import bulk_load

        n = 2000
        points_q = uniform(n, seed=92)
        points_p = uniform(n, seed=93, start_oid=n)
        tree_q = bulk_load(points_q, name="TQ")
        tree_p = bulk_load(points_p, name="TP")
        report = bij(tree_q, tree_p)
        model = estimate_bij_node_accesses(
            n, n, tree_q.leaf_capacity, tree_q.branch_capacity
        )
        assert model / 3 <= report.node_accesses <= model * 3
