"""Unit tests for pointset serialisation."""

import pytest

from repro.datasets.io import load_points, save_points
from repro.datasets.synthetic import uniform
from repro.geometry.point import Point


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        pts = uniform(100, seed=1)
        path = str(tmp_path / "pts.txt")
        save_points(pts, path)
        assert load_points(path) == pts

    def test_exact_float_preservation(self, tmp_path):
        pts = [Point(0.1 + 0.2, 1e-17, 5)]
        path = str(tmp_path / "pts.txt")
        save_points(pts, path)
        restored = load_points(path)
        assert restored[0].x == 0.1 + 0.2
        assert restored[0].y == 1e-17

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = str(tmp_path / "pts.txt")
        path_obj = tmp_path / "pts.txt"
        path_obj.write_text("# header\n\n1 2.0 3.0\n")
        assert load_points(path) == [Point(2.0, 3.0, 1)]

    def test_malformed_line_reports_location(self, tmp_path):
        path_obj = tmp_path / "bad.txt"
        path_obj.write_text("1 2.0\n")
        with pytest.raises(ValueError, match="bad.txt:1"):
            load_points(str(path_obj))

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            load_points("/nonexistent/file.txt")
