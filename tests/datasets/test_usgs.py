"""Tests for the GNIS (USGS) file loader."""

import pytest

from repro.datasets.usgs import (
    FEATURE_CLASSES,
    GNISFormatError,
    load_gnis,
    normalize,
)
from repro.geometry.point import Point

HEADER = (
    "FEATURE_ID|FEATURE_NAME|FEATURE_CLASS|STATE_ALPHA|"
    "PRIM_LAT_DEC|PRIM_LONG_DEC|ELEV_IN_M\n"
)

ROWS = [
    "1397658|Anchorage|Populated Place|AK|61.2180556|-149.9002778|31\n",
    "1419836|Denali School|School|AK|63.1148|-149.42|610\n",
    "561847|Eagle Camp|Locale|AK|64.787|-141.2|0\n",
    "561848|Nowhere|Locale|AK|0.0|0.0|0\n",            # unknown-coords sentinel
    "561849|Badrow|Locale|AK|not-a-number|-141.2|0\n",  # malformed
    "1397659|Juneau|Populated Place|AK|58.3019444|-134.4197222|17\n",
    "1397660|Fairbanks|Populated Place|AK|64.8377778|-147.7163889|136\n",
]


@pytest.fixture
def gnis_file(tmp_path):
    path = tmp_path / "AK_Features.txt"
    path.write_text(HEADER + "".join(ROWS))
    return str(path)


class TestLoadGNIS:
    def test_filters_by_class_name(self, gnis_file):
        pts = load_gnis(gnis_file, "Populated Place")
        assert {p.oid for p in pts} == {1397658, 1397659, 1397660}

    def test_paper_dataset_ids(self, gnis_file):
        assert len(load_gnis(gnis_file, "PP")) == 3
        assert len(load_gnis(gnis_file, "SC")) == 1
        assert len(load_gnis(gnis_file, "LO")) == 1

    def test_coordinates_are_lon_lat(self, gnis_file):
        (anchorage,) = [p for p in load_gnis(gnis_file, "PP") if p.oid == 1397658]
        assert anchorage.x == pytest.approx(-149.9002778)
        assert anchorage.y == pytest.approx(61.2180556)

    def test_unknown_sentinel_and_malformed_rows_dropped(self, gnis_file):
        pts = load_gnis(gnis_file, "Locale")
        assert {p.oid for p in pts} == {561847}

    def test_limit(self, gnis_file):
        assert len(load_gnis(gnis_file, "PP", limit=2)) == 2

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("A|B|C\n1|2|3\n")
        with pytest.raises(GNISFormatError):
            load_gnis(str(path), "PP")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(GNISFormatError):
            load_gnis(str(path), "PP")

    def test_short_rows_skipped(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text(HEADER + "1|x\n" + ROWS[0])
        assert len(load_gnis(str(path), "PP")) == 1

    def test_all_paper_ids_have_class_names(self):
        assert set(FEATURE_CLASSES) == {"PP", "SC", "LO"}


class TestNormalize:
    def test_joint_domain(self):
        a = [Point(-150.0, 60.0, 0), Point(-140.0, 70.0, 1)]
        b = [Point(-145.0, 65.0, 0)]
        na, nb = normalize([a, b])
        # Joint bbox is 10 x 10 degrees -> scale 1000 per degree.
        assert (na[0].x, na[0].y) == (0.0, 0.0)
        assert (na[1].x, na[1].y) == (10000.0, 10000.0)
        assert (nb[0].x, nb[0].y) == (5000.0, 5000.0)

    def test_oids_preserved(self):
        pts = [Point(1, 2, 42), Point(3, 4, 43)]
        (out,) = normalize([pts])
        assert [p.oid for p in out] == [42, 43]

    def test_aspect_ratio_preserved(self):
        pts = [Point(0, 0, 0), Point(20, 10, 1)]
        (out,) = normalize([pts])
        assert out[1].x == 10000.0
        assert out[1].y == 5000.0  # same scale on both axes

    def test_single_point(self):
        (out,) = normalize([[Point(7, 8, 0)]])
        assert (out[0].x, out[0].y) == (0.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize([[], []])

    def test_loaded_data_joins_cleanly(self, tmp_path):
        """End to end: parse, normalise, join."""
        path = tmp_path / "f.txt"
        path.write_text(HEADER + "".join(ROWS))
        pp = load_gnis(str(path), "PP")
        sc_lo = load_gnis(str(path), "SC") + load_gnis(str(path), "LO")
        npp, nother = normalize([pp, sc_lo])
        from repro.core.brute import brute_force_rcj

        pairs = brute_force_rcj(npp, nother)
        assert pairs  # tiny inputs: at least one valid middleman
