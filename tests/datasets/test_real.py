"""Unit tests for the USGS-dataset stand-ins."""

import pytest

from repro.datasets.real import (
    REAL_CARDINALITIES,
    join_combination,
    locales,
    populated_places,
    schools,
)
from repro.datasets.synthetic import DOMAIN


class TestCardinalities:
    def test_paper_table2_values(self):
        assert REAL_CARDINALITIES == {
            "PP": 177_983,
            "SC": 172_188,
            "LO": 128_476,
        }

    def test_scaled_sizes(self):
        assert len(populated_places(scale=100)) == 177_983 // 100
        assert len(schools(scale=100)) == 172_188 // 100
        assert len(locales(scale=100)) == 128_476 // 100

    def test_cardinality_ratio_preserved(self):
        pp = len(populated_places(scale=64))
        sc = len(schools(scale=64))
        ratio_paper = REAL_CARDINALITIES["PP"] / REAL_CARDINALITIES["SC"]
        assert abs(pp / sc - ratio_paper) < 0.01


class TestStructure:
    def test_in_domain(self):
        lo, hi = DOMAIN
        for p in populated_places(scale=200):
            assert lo <= p.x <= hi and lo <= p.y <= hi

    def test_deterministic(self):
        assert populated_places(scale=200, seed=7) == populated_places(
            scale=200, seed=7
        )

    def test_clustered_not_uniform(self):
        # The stand-in must be visibly skewed: compare coarse-cell
        # occupancy variance against a uniform sample of the same size.
        from repro.datasets.synthetic import uniform

        def variance(points, cells=10):
            lo, hi = DOMAIN
            width = (hi - lo) / cells
            counts = {}
            for p in points:
                key = (int((p.x - lo) / width), int((p.y - lo) / width))
                counts[key] = counts.get(key, 0) + 1
            mean = len(points) / (cells * cells)
            return sum(
                (counts.get((i, j), 0) - mean) ** 2
                for i in range(cells)
                for j in range(cells)
            )

        pp = populated_places(scale=64)
        flat = uniform(len(pp), seed=1)
        assert variance(pp) > 3 * variance(flat)

    def test_datasets_spatially_correlated(self):
        # Schools concentrate near populated places: mean NN distance
        # from SC to PP is far below the uniform expectation.
        from repro.geometry.point import Point
        from scipy.spatial import cKDTree
        import numpy as np

        pp = populated_places(scale=64)
        sc = schools(scale=64)
        tree = cKDTree(np.array([(p.x, p.y) for p in pp]))
        dists, _ = tree.query(np.array([(s.x, s.y) for s in sc]))
        mean_nn = float(dists.mean())
        # Uniform expectation ~ 0.5 / sqrt(density).
        expected_uniform = 0.5 * 10000 / (len(pp) ** 0.5)
        assert mean_nn < expected_uniform


class TestJoinCombinations:
    def test_sp_roles(self):
        q, p = join_combination("SP", scale=200)
        # SP: Q = SC, P = PP (paper Table 3).
        assert len(q) == 172_188 // 200
        assert len(p) == 177_983 // 200

    def test_primed_combination_swaps_roles(self):
        q1, p1 = join_combination("LP", scale=200)
        q2, p2 = join_combination("LP'", scale=200)
        assert len(q1) == len(p2)
        assert len(p1) == len(q2)

    def test_disjoint_oids(self):
        q, p = join_combination("SP", scale=200)
        assert {x.oid for x in q}.isdisjoint({x.oid for x in p})

    def test_unknown_combination_rejected(self):
        with pytest.raises(ValueError, match="unknown join combination"):
            join_combination("XX")
