"""Unit tests for the synthetic workload generators."""

import pytest

from repro.datasets.synthetic import DOMAIN, gaussian_clusters, uniform


class TestUniform:
    def test_cardinality_and_oids(self):
        pts = uniform(100, seed=1, start_oid=50)
        assert len(pts) == 100
        assert [p.oid for p in pts] == list(range(50, 150))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            uniform(-1)

    def test_in_domain(self):
        lo, hi = DOMAIN
        for p in uniform(500, seed=2):
            assert lo <= p.x <= hi
            assert lo <= p.y <= hi

    def test_deterministic_per_seed(self):
        assert uniform(50, seed=3) == uniform(50, seed=3)
        assert uniform(50, seed=3) != uniform(50, seed=4)

    def test_roughly_uniform_spread(self):
        # Quadrant counts of 4000 uniform points stay within 3 sigma.
        pts = uniform(4000, seed=5)
        mid = (DOMAIN[0] + DOMAIN[1]) / 2
        quadrants = [0, 0, 0, 0]
        for p in pts:
            quadrants[(p.x >= mid) * 2 + (p.y >= mid)] += 1
        for count in quadrants:
            assert abs(count - 1000) < 3 * (4000 * 0.25 * 0.75) ** 0.5


class TestGaussianClusters:
    def test_cardinality(self):
        assert len(gaussian_clusters(200, w=5, seed=1)) == 200

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            gaussian_clusters(-1, w=2)
        with pytest.raises(ValueError):
            gaussian_clusters(10, w=0)

    def test_clamped_to_domain(self):
        lo, hi = DOMAIN
        for p in gaussian_clusters(1000, w=2, seed=2):
            assert lo <= p.x <= hi
            assert lo <= p.y <= hi

    def test_equal_cluster_sizes(self):
        # Points are assigned round-robin: cluster sizes differ by <= 1.
        pts = gaussian_clusters(103, w=5, seed=3)
        assert len(pts) == 103

    def test_more_clusters_less_skew(self):
        # With more clusters the point spread widens (less skew):
        # measure the variance of cell occupancy on a coarse histogram.
        def occupancy_variance(points, cells=10):
            lo, hi = DOMAIN
            width = (hi - lo) / cells
            counts = {}
            for p in points:
                key = (int((p.x - lo) / width), int((p.y - lo) / width))
                counts[key] = counts.get(key, 0) + 1
            total_cells = cells * cells
            mean = len(points) / total_cells
            return sum(
                (counts.get((i, j), 0) - mean) ** 2
                for i in range(cells)
                for j in range(cells)
            ) / total_cells

        skewed = occupancy_variance(gaussian_clusters(3000, w=2, seed=4))
        spread = occupancy_variance(gaussian_clusters(3000, w=20, seed=4))
        assert spread < skewed

    def test_deterministic_per_seed(self):
        a = gaussian_clusters(60, w=3, seed=7)
        b = gaussian_clusters(60, w=3, seed=7)
        assert a == b
