"""Unit tests for the page-granular disk manager."""

import pytest

from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager


class TestAllocation:
    def test_sequential_page_ids(self):
        disk = DiskManager()
        assert [disk.allocate() for _ in range(3)] == [0, 1, 2]
        assert disk.num_pages == 3

    def test_page_size_validation(self):
        with pytest.raises(ValueError):
            DiskManager(page_size=16)

    def test_default_page_size_matches_paper(self):
        assert DEFAULT_PAGE_SIZE == 1024
        assert DiskManager().page_size == 1024

    def test_distinct_disk_ids(self):
        assert DiskManager().disk_id != DiskManager().disk_id


class TestReadWrite:
    def test_roundtrip(self):
        disk = DiskManager()
        pid = disk.allocate()
        disk.write_page(pid, b"hello")
        assert disk.read_page(pid)[:5] == b"hello"

    def test_overwrite(self):
        disk = DiskManager()
        pid = disk.allocate()
        disk.write_page(pid, b"one")
        disk.write_page(pid, b"two")
        assert disk.read_page(pid)[:3] == b"two"

    def test_overflow_rejected(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate()
        with pytest.raises(ValueError, match="overflow"):
            disk.write_page(pid, b"x" * 65)

    def test_exactly_full_page_accepted(self):
        disk = DiskManager(page_size=64)
        pid = disk.allocate()
        disk.write_page(pid, b"x" * 64)
        assert disk.read_page(pid) == b"x" * 64

    def test_unallocated_page_rejected(self):
        disk = DiskManager()
        with pytest.raises(IndexError):
            disk.read_page(0)
        with pytest.raises(IndexError):
            disk.write_page(5, b"")

    def test_counters(self):
        disk = DiskManager()
        pid = disk.allocate()
        disk.write_page(pid, b"a")
        disk.read_page(pid)
        disk.read_page(pid)
        assert disk.physical_writes == 1
        assert disk.physical_reads == 2


class TestFileBacked:
    def test_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with DiskManager(page_size=128, path=path) as disk:
            a = disk.allocate()
            b = disk.allocate()
            disk.write_page(a, b"alpha")
            disk.write_page(b, b"beta")
            assert disk.read_page(a)[:5] == b"alpha"
            assert disk.read_page(b)[:4] == b"beta"

    def test_close_removes_backing_file(self, tmp_path):
        import os

        path = str(tmp_path / "pages.bin")
        disk = DiskManager(page_size=128, path=path)
        disk.allocate()
        disk.close()
        assert not os.path.exists(path)

    def test_page_ids_iterates_all(self):
        disk = DiskManager()
        for _ in range(4):
            disk.allocate()
        assert list(disk.page_ids()) == [0, 1, 2, 3]
