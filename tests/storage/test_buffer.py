"""Unit tests for the LRU buffer manager."""

import pytest

from repro.storage.buffer import BufferManager, buffer_for_trees
from repro.storage.disk import DiskManager


def make_disk(n_pages: int, page_size: int = 64) -> DiskManager:
    disk = DiskManager(page_size=page_size)
    for i in range(n_pages):
        pid = disk.allocate()
        disk.write_page(pid, bytes([i]) * 8)
    return disk


class TestBasics:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferManager(-1)

    def test_miss_then_hit(self):
        disk = make_disk(2)
        buf = BufferManager(4)
        buf.get_page(disk, 0)
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == 1
        assert buf.stats.buffer_hits == 1

    def test_zero_capacity_always_faults(self):
        disk = make_disk(1)
        buf = BufferManager(0)
        buf.get_page(disk, 0)
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == 2
        assert buf.stats.buffer_hits == 0
        assert buf.num_cached == 0

    def test_returns_page_content(self):
        disk = make_disk(3)
        buf = BufferManager(2)
        assert buf.get_page(disk, 2)[:8] == bytes([2]) * 8
        assert buf.get_page(disk, 2)[:8] == bytes([2]) * 8  # cached copy


class TestLRUPolicy:
    def test_eviction_order_is_lru(self):
        disk = make_disk(3)
        buf = BufferManager(2)
        buf.get_page(disk, 0)  # fault
        buf.get_page(disk, 1)  # fault
        buf.get_page(disk, 0)  # hit, 0 becomes MRU
        buf.get_page(disk, 2)  # fault, evicts 1 (LRU)
        buf.get_page(disk, 0)  # hit
        buf.get_page(disk, 1)  # fault again
        assert buf.stats.page_faults == 4
        assert buf.stats.buffer_hits == 2

    def test_capacity_respected(self):
        disk = make_disk(10)
        buf = BufferManager(3)
        for pid in range(10):
            buf.get_page(disk, pid)
        assert buf.num_cached == 3

    def test_resize_evicts(self):
        disk = make_disk(5)
        buf = BufferManager(5)
        for pid in range(5):
            buf.get_page(disk, pid)
        buf.resize(2)
        assert buf.num_cached == 2
        # Remaining frames are the two most recently used.
        buf.get_page(disk, 4)
        buf.get_page(disk, 3)
        assert buf.stats.page_faults == 5  # both still cached

    def test_invalidate_forces_refetch(self):
        disk = make_disk(1)
        buf = BufferManager(2)
        buf.get_page(disk, 0)
        buf.invalidate(disk, 0)
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == 2

    def test_clear_keeps_counters(self):
        disk = make_disk(2)
        buf = BufferManager(2)
        buf.get_page(disk, 0)
        buf.clear()
        assert buf.num_cached == 0
        assert buf.stats.page_faults == 1


class TestMultiDisk:
    def test_pages_keyed_by_disk(self):
        disk_a = make_disk(1)
        disk_b = make_disk(1)
        buf = BufferManager(4)
        buf.get_page(disk_a, 0)
        buf.get_page(disk_b, 0)  # same pid, different disk: a fault
        assert buf.stats.page_faults == 2
        buf.get_page(disk_a, 0)
        buf.get_page(disk_b, 0)
        assert buf.stats.buffer_hits == 2


class TestBufferForTrees:
    def test_fraction_of_total_pages(self):
        from repro.datasets.synthetic import uniform
        from repro.rtree.bulk import bulk_load

        tree_a = bulk_load(uniform(500, seed=1))
        tree_b = bulk_load(uniform(500, seed=2))
        total = tree_a.disk.num_pages + tree_b.disk.num_pages
        buf = buffer_for_trees([tree_a, tree_b], 0.5)
        assert buf.capacity == int(total * 0.5)

    def test_minimum_one_page(self):
        from repro.datasets.synthetic import uniform
        from repro.rtree.bulk import bulk_load

        tree = bulk_load(uniform(10, seed=1))
        buf = buffer_for_trees([tree], 0.0001)
        assert buf.capacity == 1
