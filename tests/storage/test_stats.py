"""Unit tests for I/O statistics and the paper's cost model."""

from repro.storage.stats import DEFAULT_MS_PER_FAULT, CostModel, IOStats


class TestIOStats:
    def test_initial_state_zero(self):
        s = IOStats()
        assert s.requests == 0
        assert s.hit_ratio() == 0.0

    def test_hit_ratio(self):
        s = IOStats(buffer_hits=3, page_faults=1)
        assert s.requests == 4
        assert s.hit_ratio() == 0.75

    def test_reset(self):
        s = IOStats(buffer_hits=3, page_faults=1, physical_writes=2)
        s.reset()
        assert (s.buffer_hits, s.page_faults, s.physical_writes) == (0, 0, 0)

    def test_snapshot_is_independent_copy(self):
        s = IOStats(buffer_hits=1)
        snap = s.snapshot()
        s.buffer_hits = 10
        assert snap.buffer_hits == 1

    def test_delta(self):
        start = IOStats(buffer_hits=2, page_faults=5, physical_writes=1)
        now = IOStats(buffer_hits=7, page_faults=9, physical_writes=1)
        d = now.delta(start)
        assert (d.buffer_hits, d.page_faults, d.physical_writes) == (5, 4, 0)


class TestCostModel:
    def test_paper_default_charge(self):
        # "charging 10ms per page fault (a typical value)"
        assert DEFAULT_MS_PER_FAULT == 10.0
        model = CostModel()
        assert model.io_seconds(IOStats(page_faults=100)) == 1.0

    def test_custom_charge(self):
        model = CostModel(ms_per_fault=5.0)
        assert model.io_seconds(IOStats(page_faults=200)) == 1.0

    def test_hits_are_free(self):
        model = CostModel()
        assert model.io_seconds(IOStats(buffer_hits=10_000)) == 0.0
