"""Tests for durable single-file tree persistence."""

import os

import pytest

from repro.core.bij import bij
from repro.core.brute import brute_force_rcj
from repro.datasets.synthetic import uniform
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.bulk import bulk_load
from repro.rtree.validate import check_invariants
from repro.storage.buffer import BufferManager
from repro.storage.persist import (
    SUPERBLOCK_SIZE,
    PersistenceError,
    load_tree,
    save_tree,
    sync,
)


def _oids(points):
    return sorted(p.oid for p in points)


class TestSaveLoad:
    def test_roundtrip_preserves_everything(self, tmp_path):
        points = uniform(600, seed=0)
        tree = bulk_load(points)
        path = str(tmp_path / "tree.rcj")
        save_tree(tree, path)

        loaded = load_tree(path)
        try:
            assert len(loaded) == 600
            assert loaded.height == tree.height
            assert _oids(loaded.all_points()) == _oids(points)
            check_invariants(loaded)
        finally:
            loaded.disk.close()

    def test_empty_tree_roundtrip(self, tmp_path):
        from repro.rtree.tree import RTree

        path = str(tmp_path / "empty.rcj")
        save_tree(RTree(), path)
        loaded = load_tree(path)
        try:
            assert len(loaded) == 0
            assert loaded.root_pid is None
        finally:
            loaded.disk.close()

    def test_queries_on_loaded_tree(self, tmp_path):
        points = uniform(400, seed=1)
        path = str(tmp_path / "tree.rcj")
        save_tree(bulk_load(points), path)
        loaded = load_tree(path)
        try:
            window = Rect(1000, 1000, 6000, 6000)
            expected = sorted(
                p.oid for p in points if window.contains_point(p.x, p.y)
            )
            assert _oids(loaded.range_search(window)) == expected
        finally:
            loaded.disk.close()

    def test_loaded_tree_through_buffer(self, tmp_path):
        points = uniform(300, seed=2)
        path = str(tmp_path / "tree.rcj")
        save_tree(bulk_load(points), path)
        buffer = BufferManager(capacity=32)
        loaded = load_tree(path, buffer=buffer)
        try:
            loaded.range_search(Rect(0, 0, 10000, 10000))
            loaded.range_search(Rect(0, 0, 10000, 10000))
            assert buffer.stats.buffer_hits > 0
        finally:
            loaded.disk.close()

    def test_join_over_reloaded_trees(self, tmp_path):
        points_p = uniform(250, seed=3)
        points_q = uniform(250, seed=4, start_oid=250)
        path_p = str(tmp_path / "p.rcj")
        path_q = str(tmp_path / "q.rcj")
        save_tree(bulk_load(points_p), path_p)
        save_tree(bulk_load(points_q), path_q)
        tp, tq = load_tree(path_p, name="TP"), load_tree(path_q, name="TQ")
        try:
            got = bij(tq, tp, symmetric=True).pair_keys()
            assert got == {r.key() for r in brute_force_rcj(points_p, points_q)}
        finally:
            tp.disk.close()
            tq.disk.close()


class TestMutateAndSync:
    def test_insert_after_load_then_reload(self, tmp_path):
        points = uniform(200, seed=5)
        path = str(tmp_path / "tree.rcj")
        save_tree(bulk_load(points), path)

        loaded = load_tree(path)
        extra = Point(9876.0, 5432.0, 777)
        loaded.insert(extra)
        sync(loaded, path)
        loaded.disk.close()

        again = load_tree(path)
        try:
            assert len(again) == 201
            assert 777 in {p.oid for p in again.all_points()}
            check_invariants(again)
        finally:
            again.disk.close()

    def test_delete_after_load_then_reload(self, tmp_path):
        points = uniform(200, seed=6)
        path = str(tmp_path / "tree.rcj")
        save_tree(bulk_load(points), path)

        loaded = load_tree(path)
        assert loaded.delete(points[0])
        sync(loaded, path)
        loaded.disk.close()

        again = load_tree(path)
        try:
            assert len(again) == 199
            assert points[0].oid not in {p.oid for p in again.all_points()}
        finally:
            again.disk.close()

    def test_sync_requires_filestore(self, tmp_path):
        tree = bulk_load(uniform(10, seed=7))
        with pytest.raises(PersistenceError):
            sync(tree, str(tmp_path / "x.rcj"))


class TestCorruptFiles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            load_tree(str(tmp_path / "absent.rcj"))

    def test_too_small(self, tmp_path):
        path = tmp_path / "tiny.rcj"
        path.write_bytes(b"xx")
        with pytest.raises(PersistenceError):
            load_tree(str(path))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rcj"
        path.write_bytes(b"NOTATREE" + b"\x00" * 100)
        with pytest.raises(PersistenceError):
            load_tree(str(path))

    def test_truncated_pages(self, tmp_path):
        points = uniform(300, seed=8)
        path = str(tmp_path / "trunc.rcj")
        save_tree(bulk_load(points), path)
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 100)
        with pytest.raises(PersistenceError):
            load_tree(path)

    def test_wrong_version(self, tmp_path):
        points = uniform(50, seed=9)
        path = str(tmp_path / "ver.rcj")
        save_tree(bulk_load(points), path)
        with open(path, "r+b") as f:
            f.seek(8)
            f.write((99).to_bytes(4, "little"))
        with pytest.raises(PersistenceError):
            load_tree(path)

    def test_superblock_size_constant(self):
        # The header must fit the reserved block.
        from repro.storage.persist import _SUPERBLOCK

        assert _SUPERBLOCK.size <= SUPERBLOCK_SIZE
