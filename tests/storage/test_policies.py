"""Tests for the FIFO and CLOCK buffer replacement policies."""

import pytest

from repro.datasets.synthetic import uniform
from repro.geometry.rect import Rect
from repro.rtree.bulk import bulk_load
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager
from repro.storage.policies import (
    POLICIES,
    ClockBufferManager,
    FIFOBufferManager,
)


def _disk_with_pages(n: int, page_size: int = 64) -> DiskManager:
    disk = DiskManager(page_size)
    for i in range(n):
        pid = disk.allocate()
        disk.write_page(pid, bytes([i % 256]) * 8)
    return disk


class TestFIFO:
    def test_hit_and_fault_accounting(self):
        disk = _disk_with_pages(4)
        buf = FIFOBufferManager(capacity=2)
        buf.get_page(disk, 0)
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == 1
        assert buf.stats.buffer_hits == 1

    def test_fifo_evicts_in_insertion_order_despite_hits(self):
        disk = _disk_with_pages(4)
        buf = FIFOBufferManager(capacity=2)
        buf.get_page(disk, 0)
        buf.get_page(disk, 1)
        buf.get_page(disk, 0)  # hit; must NOT refresh page 0
        buf.get_page(disk, 2)  # evicts page 0 (oldest by insertion)
        before = buf.stats.page_faults
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == before + 1  # 0 was evicted

    def test_lru_differs_on_same_trace(self):
        # The same trace keeps page 0 under LRU (the hit refreshes it).
        disk = _disk_with_pages(4)
        buf = BufferManager(capacity=2)
        buf.get_page(disk, 0)
        buf.get_page(disk, 1)
        buf.get_page(disk, 0)
        buf.get_page(disk, 2)  # evicts page 1 under LRU
        before = buf.stats.page_faults
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == before  # still cached

    def test_zero_capacity(self):
        disk = _disk_with_pages(2)
        buf = FIFOBufferManager(capacity=0)
        buf.get_page(disk, 0)
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == 2


class TestClock:
    def test_hit_and_fault_accounting(self):
        disk = _disk_with_pages(4)
        buf = ClockBufferManager(capacity=2)
        buf.get_page(disk, 0)
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == 1
        assert buf.stats.buffer_hits == 1

    def test_second_chance_protects_referenced_page(self):
        disk = _disk_with_pages(4)
        buf = ClockBufferManager(capacity=2)
        buf.get_page(disk, 0)
        buf.get_page(disk, 1)
        buf.get_page(disk, 0)  # sets 0's reference bit
        buf.get_page(disk, 2)  # hand clears 0's bit, evicts 1
        before = buf.stats.page_faults
        buf.get_page(disk, 0)
        assert buf.stats.page_faults == before  # 0 survived its sweep

    def test_unreferenced_page_evicted_first(self):
        disk = _disk_with_pages(4)
        buf = ClockBufferManager(capacity=2)
        buf.get_page(disk, 0)
        buf.get_page(disk, 1)
        buf.get_page(disk, 2)  # neither referenced: evict 0
        before = buf.stats.page_faults
        buf.get_page(disk, 1)
        assert buf.stats.page_faults == before

    def test_invalidate_clears_ref_bit_state(self):
        disk = _disk_with_pages(3)
        buf = ClockBufferManager(capacity=2)
        buf.get_page(disk, 0)
        buf.get_page(disk, 0)
        buf.invalidate(disk, 0)
        assert buf.num_cached == 0
        buf.get_page(disk, 0)  # re-faults cleanly
        assert buf.stats.page_faults == 2

    def test_resize_shrinks(self):
        disk = _disk_with_pages(5)
        buf = ClockBufferManager(capacity=4)
        for pid in range(4):
            buf.get_page(disk, pid)
        buf.resize(2)
        assert buf.num_cached == 2

    def test_clear(self):
        disk = _disk_with_pages(3)
        buf = ClockBufferManager(capacity=2)
        buf.get_page(disk, 0)
        buf.clear()
        assert buf.num_cached == 0


class TestPoliciesOnJoins:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_policy_does_not_change_results(self, policy):
        """Replacement policy affects cost only, never correctness."""
        from repro.core.bij import bij
        from repro.core.brute import brute_force_rcj

        points_p = uniform(200, seed=50)
        points_q = uniform(200, seed=51, start_oid=200)
        tree_p = bulk_load(points_p, name="TP")
        tree_q = bulk_load(points_q, name="TQ")
        buf = POLICIES[policy](capacity=8)
        tree_p.attach_buffer(buf)
        tree_q.attach_buffer(buf)
        got = bij(tree_q, tree_p, symmetric=True).pair_keys()
        assert got == {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert buf.stats.page_faults > 0

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_range_scan_identical_bytes(self, policy):
        points = uniform(300, seed=52)
        tree = bulk_load(points)
        buf = POLICIES[policy](capacity=4)
        tree.attach_buffer(buf)
        window = Rect(2000, 2000, 8000, 8000)
        expected = sorted(
            p.oid for p in points if window.contains_point(p.x, p.y)
        )
        assert sorted(p.oid for p in tree.range_search(window)) == expected
