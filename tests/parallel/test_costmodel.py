"""Unit tests for the cost-based execution planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.fixtures import clustered_pair, uniform_pair
from repro.engine.arrays import PointArray
from repro.parallel.costmodel import (
    DEFAULT_BUDGET_BYTES,
    PLANNED_FAMILY_NAMES,
    TOPK_OBJ_MAX_K,
    ExecutionPlan,
    choose_dynamic_backend,
    choose_family_plan,
    choose_plan,
    choose_topk_plan,
    estimate_bytes,
    estimate_candidates,
    estimate_family_candidates,
    memory_budget_bytes,
    sample_density_factor,
)

BIG = 1 << 40  # effectively unlimited budget


def _fake_big(points, factor):
    """A column object impersonating a ``factor``-times-bigger dataset
    (plan selection only reads sizes and a strided coordinate sample,
    so tiled columns are indistinguishable from the real thing and far
    cheaper than generating it)."""
    arr = PointArray.from_points(points)
    n = len(arr) * factor

    class Inflated:
        x = np.resize(arr.x, n)
        y = np.resize(arr.y, n)

        def __len__(self):
            return n

    return Inflated()


class TestPlanSelection:
    def test_small_input_stays_serial(self):
        points_p, points_q = uniform_pair(300, 300, seed=1)
        plan = choose_plan(points_p, points_q, workers=4, budget_bytes=BIG)
        assert plan.engine == "array"
        assert plan.workers == 1

    def test_large_input_goes_parallel(self):
        points_p, points_q = uniform_pair(400, 400, seed=2)
        plan = choose_plan(
            _fake_big(points_p, 500),
            _fake_big(points_q, 500),
            workers=4,
            budget_bytes=BIG,
        )
        assert plan.engine == "array-parallel"
        assert plan.workers == 4

    def test_one_worker_forbids_parallel(self):
        points_p, points_q = uniform_pair(400, 400, seed=2)
        plan = choose_plan(
            _fake_big(points_p, 500), _fake_big(points_q, 500),
            workers=1, budget_bytes=BIG,
        )
        assert plan.engine == "array"

    def test_budget_overflow_selects_rtree_backend(self):
        points_p, points_q = uniform_pair(500, 500, seed=3)
        plan = choose_plan(points_p, points_q, workers=4, budget_bytes=1)
        assert plan.engine == "obj"
        assert plan.workers == 1

    def test_tight_budget_sheds_workers_before_abandoning_parallelism(self):
        # A budget that fits a few workers but not the full request must
        # shrink the pool, not fall back to serial.
        points_p, points_q = uniform_pair(400, 400, seed=3)
        big_p, big_q = _fake_big(points_p, 500), _fake_big(points_q, 500)
        wide = choose_plan(big_p, big_q, workers=16, budget_bytes=BIG)
        assert wide.engine == "array-parallel" and wide.workers == 16
        budget = estimate_bytes(
            len(big_p), len(big_q), 4, wide.est_candidates
        )
        shed = choose_plan(big_p, big_q, workers=16, budget_bytes=budget)
        assert shed.engine == "array-parallel"
        assert 2 <= shed.workers <= 4
        assert any("shed" in r for r in shed.reasons)

    def test_worker_budget_scales_with_work(self):
        # Moderately sized input: parallel, but not worth 64 processes.
        points_p, points_q = uniform_pair(400, 400, seed=4)
        plan = choose_plan(
            _fake_big(points_p, 20), _fake_big(points_q, 20),
            workers=64, budget_bytes=BIG,
        )
        assert plan.engine == "array-parallel"
        assert 2 <= plan.workers < 64

    def test_empty_input(self):
        points_p, _ = uniform_pair(50, 50, seed=5)
        plan = choose_plan(points_p, [], workers=4)
        assert plan.engine == "array"
        assert plan.est_candidates == 0

    def test_invalid_workers_rejected(self):
        points_p, points_q = uniform_pair(50, 50, seed=6)
        with pytest.raises(ValueError, match="workers"):
            choose_plan(points_p, points_q, workers=0)

    def test_deterministic(self):
        points_p, points_q = clustered_pair(600, 600, seed=7)
        assert choose_plan(points_p, points_q, workers=4) == choose_plan(
            points_p, points_q, workers=4
        )


class TestDensitySample:
    def test_uniform_data_near_one(self):
        points_p, points_q = uniform_pair(2000, 2000, seed=8)
        factor = sample_density_factor(points_p, points_q)
        assert 0.5 <= factor <= 2.0

    def test_clustered_selfjoin_denser_than_uniform(self):
        # Self-join shape: probes drawn from the same clusters as the
        # data sit in locally dense regions, so the factor must exceed
        # the uniform baseline.
        uni_p, _ = uniform_pair(2000, 2000, seed=9)
        clu_p, _ = clustered_pair(2000, 2000, seed=9, w=3)
        assert sample_density_factor(clu_p, clu_p) > sample_density_factor(
            uni_p, uni_p
        )

    def test_disjoint_clusters_sparser_than_uniform(self):
        # clustered_pair draws P and Q around *independent* centres:
        # probes mostly sit where P is sparse, and the factor says so.
        clu_p, clu_q = clustered_pair(2000, 2000, seed=9, w=3)
        assert sample_density_factor(clu_p, clu_q) < 1.0

    def test_skew_inflates_candidate_estimate(self):
        uni = estimate_candidates(10_000, 10_000, 1.0)
        skewed = estimate_candidates(10_000, 10_000, 3.0)
        assert skewed == 3 * uni

    def test_degenerate_extent_defaults_to_one(self):
        from repro.geometry.point import Point

        line = [Point(5.0, float(i), i) for i in range(100)]
        assert sample_density_factor(line, line) == 1.0

    def test_accepts_point_arrays(self):
        points_p, points_q = uniform_pair(500, 500, seed=10)
        via_points = sample_density_factor(points_p, points_q)
        via_arrays = sample_density_factor(
            PointArray.from_points(points_p), PointArray.from_points(points_q)
        )
        assert via_points == pytest.approx(via_arrays)


class TestEstimatesAndExplain:
    def test_bytes_monotone_in_everything(self):
        base = estimate_bytes(1000, 1000, 1, 10_000)
        assert estimate_bytes(2000, 1000, 1, 10_000) > base
        assert estimate_bytes(1000, 1000, 4, 10_000) > base
        assert estimate_bytes(1000, 1000, 1, 90_000) > base

    def test_describe_mentions_decision_and_inputs(self):
        points_p, points_q = uniform_pair(200, 250, seed=11)
        plan = choose_plan(points_p, points_q, workers=2)
        text = plan.describe()
        assert "engine=array" in text
        assert "|P| = 200" in text and "|Q| = 250" in text
        assert "budget" in text
        assert plan.reasons  # every decision carries its why

    def test_budget_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "2.5")
        assert memory_budget_bytes() == int(2.5 * (1 << 20))

    def test_plan_is_frozen(self):
        points_p, points_q = uniform_pair(60, 60, seed=12)
        plan = choose_plan(points_p, points_q)
        assert isinstance(plan, ExecutionPlan)
        with pytest.raises(Exception):
            plan.engine = "brute"

    def test_with_measured_keeps_plan_frozen_and_describes(self):
        points_p, points_q = uniform_pair(60, 60, seed=13)
        plan = choose_plan(points_p, points_q)
        assert plan.measured is None and plan.measured_seconds == {}
        measured = plan.with_measured({"candidate": 0.5, "verify": 0.25})
        assert measured.measured_seconds == {"candidate": 0.5, "verify": 0.25}
        assert measured.engine == plan.engine
        assert "measured:" in measured.describe()
        assert "candidate=0.500s" in measured.describe()
        with pytest.raises(Exception):
            measured.measured = None


class TestTopkPlan:
    def test_small_k_small_data_goes_obj(self):
        points_p, points_q = uniform_pair(300, 300, seed=20)
        plan = choose_topk_plan(points_p, points_q, k=5, budget_bytes=BIG)
        assert plan.engine == "obj"
        assert plan.reasons

    def test_large_k_goes_array(self):
        points_p, points_q = uniform_pair(300, 300, seed=20)
        plan = choose_topk_plan(
            points_p, points_q, k=TOPK_OBJ_MAX_K + 1, budget_bytes=BIG
        )
        assert plan.engine == "array"

    def test_large_data_goes_array_even_for_tiny_k(self):
        points_p, points_q = uniform_pair(400, 400, seed=21)
        plan = choose_topk_plan(
            _fake_big(points_p, 100),
            _fake_big(points_q, 100),
            k=5,
            budget_bytes=BIG,
        )
        assert plan.engine == "array"

    def test_prebuilt_trees_widen_the_obj_regime(self):
        points_p, points_q = uniform_pair(400, 400, seed=21)
        big_p, big_q = _fake_big(points_p, 100), _fake_big(points_q, 100)
        plan = choose_topk_plan(
            big_p, big_q, k=5, budget_bytes=BIG, trees_prebuilt=True
        )
        assert plan.engine == "obj"

    def test_budget_overflow_forces_obj(self):
        points_p, points_q = uniform_pair(500, 500, seed=22)
        plan = choose_topk_plan(points_p, points_q, k=1000, budget_bytes=1)
        assert plan.engine == "obj"

    def test_empty_or_zero_k_trivial(self):
        points_p, points_q = uniform_pair(50, 50, seed=23)
        assert choose_topk_plan([], points_q, k=5).engine == "array"
        assert choose_topk_plan(points_p, points_q, k=0).engine == "array"


class TestMemoryBudgetValidation:
    def test_unset_yields_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMORY_BUDGET_MB", raising=False)
        assert memory_budget_bytes() == DEFAULT_BUDGET_BYTES

    def test_blank_yields_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "   ")
        assert memory_budget_bytes() == DEFAULT_BUDGET_BYTES

    @pytest.mark.parametrize("bad", ["0", "-5", "-0.1", "nan", "-inf"])
    def test_non_positive_rejected_naming_the_variable(
        self, monkeypatch, bad
    ):
        # "0" and negatives used to yield a 0-byte budget that silently
        # routed every join onto the slow obj path; now they fail fast.
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", bad)
        with pytest.raises(ValueError, match="REPRO_MEMORY_BUDGET_MB"):
            memory_budget_bytes()

    @pytest.mark.parametrize("bad", ["abc", "12MB", ""])
    def test_non_numeric_rejected_naming_the_variable(
        self, monkeypatch, bad
    ):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", bad)
        if not bad.strip():
            assert memory_budget_bytes() == DEFAULT_BUDGET_BYTES
        else:
            # Previously a bare float() ValueError with no mention of
            # the variable that caused it.
            with pytest.raises(
                ValueError, match="REPRO_MEMORY_BUDGET_MB"
            ):
                memory_budget_bytes()

    def test_infinite_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "inf")
        with pytest.raises(ValueError, match="finite"):
            memory_budget_bytes()

    def test_valid_override_still_works(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "64")
        assert memory_budget_bytes() == 64 * (1 << 20)

    def test_plan_surfaces_the_error(self, monkeypatch):
        # choose_plan consults the budget when none is passed: the
        # validation error reaches the caller instead of a bogus plan.
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "0")
        points_p, points_q = uniform_pair(50, 50, seed=30)
        with pytest.raises(ValueError, match="REPRO_MEMORY_BUDGET_MB"):
            choose_plan(points_p, points_q)


class TestFamilyPlanValidation:
    def test_unknown_family_rejected_listing_valid_names(self):
        # Previously fell silently into the CIJ branch and returned a
        # bogus (but plausible-looking) plan.
        points_p, points_q = uniform_pair(50, 50, seed=31)
        with pytest.raises(ValueError, match="unknown join family") as exc:
            choose_family_plan("voronoi", points_p, points_q)
        for name in PLANNED_FAMILY_NAMES:
            assert name in str(exc.value)

    def test_epsilon_without_eps_rejected(self):
        # Previously a bare TypeError deep inside the eps estimator.
        points_p, points_q = uniform_pair(50, 50, seed=31)
        with pytest.raises(ValueError, match="eps"):
            choose_family_plan("epsilon", points_p, points_q)

    @pytest.mark.parametrize("family", ["knn", "kcp"])
    def test_k_families_without_k_rejected(self, family):
        points_p, points_q = uniform_pair(50, 50, seed=31)
        with pytest.raises(ValueError, match="requires k"):
            choose_family_plan(family, points_p, points_q)

    def test_estimator_validates_too(self):
        points_p, points_q = uniform_pair(50, 50, seed=31)
        with pytest.raises(ValueError, match="unknown join family"):
            estimate_family_candidates("nope", points_p, points_q)
        with pytest.raises(ValueError, match="eps"):
            estimate_family_candidates("epsilon", points_p, points_q)

    def test_valid_requests_still_plan(self):
        points_p, points_q = uniform_pair(300, 300, seed=32)
        assert choose_family_plan(
            "epsilon", points_p, points_q, eps=40.0
        ).engine in ("array", "array-parallel")
        assert choose_family_plan("knn", points_p, points_q, k=4).engine
        assert choose_family_plan("cij", points_p, points_q).engine


class TestDynamicBackendChoice:
    def test_fits_budget_picks_array(self):
        backend, reason = choose_dynamic_backend(1000, 1000, budget_bytes=BIG)
        assert backend == "array"
        assert "fits" in reason

    def test_over_budget_picks_obj(self):
        backend, reason = choose_dynamic_backend(1000, 1000, budget_bytes=1)
        assert backend == "obj"
        assert "budget" in reason
