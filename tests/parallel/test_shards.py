"""Unit tests for Hilbert shard planning (and the vectorized curve)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.hilbert import (
    DEFAULT_ORDER,
    HilbertMapper,
    xy_to_d,
    xy_to_d_batch,
)
from repro.geometry.point import Point
from repro.parallel.shards import hilbert_shard_keys, plan_shards


class TestVectorizedCurve:
    @pytest.mark.parametrize("order", [1, 3, 8, 16])
    def test_matches_scalar_transform(self, order):
        rng = np.random.default_rng(order)
        side = 1 << order
        xs = rng.integers(0, side, size=300)
        ys = rng.integers(0, side, size=300)
        batch = xy_to_d_batch(order, xs, ys)
        assert batch.tolist() == [
            xy_to_d(order, int(x), int(y)) for x, y in zip(xs, ys)
        ]

    def test_exhaustive_small_grid(self):
        order, side = 3, 8
        gx, gy = np.meshgrid(np.arange(side), np.arange(side))
        batch = xy_to_d_batch(order, gx.ravel(), gy.ravel())
        # A Hilbert curve visits every cell exactly once.
        assert sorted(batch.tolist()) == list(range(side * side))

    def test_out_of_range_cells_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            xy_to_d_batch(2, np.array([4]), np.array([0]))

    def test_mapper_batch_matches_scalar_keys(self):
        rng = np.random.default_rng(7)
        pts = [
            Point(x, y, i)
            for i, (x, y) in enumerate(rng.uniform(0, 10000, size=(100, 2)))
        ]
        mapper = HilbertMapper.for_points(pts, order=DEFAULT_ORDER)
        xs = np.array([p.x for p in pts])
        ys = np.array([p.y for p in pts])
        assert mapper.keys_batch(xs, ys).tolist() == [
            mapper.key_of_point(p) for p in pts
        ]


class TestShardPlanning:
    def test_plan_is_a_partition(self):
        rng = np.random.default_rng(1)
        x, y = rng.uniform(0, 100, 500), rng.uniform(0, 100, 500)
        plan = plan_shards(x, y, 8, min_shard=16)
        assert len(plan) == 8
        seen = np.concatenate([plan.shard(i) for i in range(len(plan))])
        assert sorted(seen.tolist()) == list(range(500))
        assert all(hi > lo for lo, hi in plan.ranges())  # no empty shard

    def test_order_sorted_by_hilbert_key(self):
        rng = np.random.default_rng(2)
        x, y = rng.uniform(0, 1, 200), rng.uniform(0, 1, 200)
        plan = plan_shards(x, y, 4, min_shard=8)
        keys = hilbert_shard_keys(x, y)
        assert np.all(np.diff(keys[plan.order]) >= 0)

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        x, y = rng.uniform(0, 9, 300), rng.uniform(0, 9, 300)
        a = plan_shards(x, y, 6, min_shard=10)
        b = plan_shards(x, y, 6, min_shard=10)
        assert np.array_equal(a.order, b.order)
        assert np.array_equal(a.bounds, b.bounds)

    def test_shard_count_clamped_by_min_shard(self):
        x = np.arange(100, dtype=float)
        plan = plan_shards(x, x, 64, min_shard=30)
        assert len(plan) == 3  # 100 // 30

    def test_tiny_input_gets_one_shard(self):
        x = np.arange(5, dtype=float)
        plan = plan_shards(x, x, 8, min_shard=1024)
        assert len(plan) == 1
        assert plan.shard(0).tolist() == [0, 1, 2, 3, 4]

    def test_zero_points_zero_shards(self):
        plan = plan_shards(np.empty(0), np.empty(0), 4)
        assert len(plan) == 0
        assert plan.ranges() == []

    def test_degenerate_extent_handled(self):
        # All probes on one vertical line: the x axis collapses.
        y = np.linspace(0, 50, 128)
        plan = plan_shards(np.full(128, 7.0), y, 4, min_shard=8)
        assert len(plan) == 4
        seen = np.concatenate([plan.shard(i) for i in range(4)])
        assert sorted(seen.tolist()) == list(range(128))

    def test_invalid_shard_request_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            plan_shards(np.ones(4), np.ones(4), 0)
