"""Unit tests for the shared-memory column transport."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.parallel.sharedmem import SharedArrays


def _gone(name: str) -> bool:
    try:
        block = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    block.close()
    return False


@pytest.fixture
def arrays():
    return {
        "x": np.arange(10, dtype=np.float64),
        "y": np.linspace(-1.0, 1.0, 7),
        "oid": np.arange(5, dtype=np.int64),
    }


class TestRoundtrip:
    def test_attach_sees_created_values(self, arrays):
        with SharedArrays.create(arrays) as owner:
            view = SharedArrays.attach(owner.spec())
            try:
                for key, arr in arrays.items():
                    np.testing.assert_array_equal(view[key], arr)
                    assert view[key].dtype == arr.dtype
            finally:
                view.close()

    def test_attached_views_are_read_only(self, arrays):
        with SharedArrays.create(arrays) as owner:
            view = SharedArrays.attach(owner.spec())
            try:
                with pytest.raises(ValueError):
                    view["x"][0] = 99.0
            finally:
                view.close()

    def test_spec_is_picklable(self, arrays):
        import pickle

        with SharedArrays.create(arrays) as owner:
            spec = pickle.loads(pickle.dumps(owner.spec()))
            assert spec == owner.spec()

    def test_empty_arrays_supported(self):
        with SharedArrays.create({"x": np.empty(0)}) as owner:
            assert len(owner["x"]) == 0


class TestLifecycle:
    def test_destroy_unlinks(self, arrays):
        owner = SharedArrays.create(arrays)
        name = owner.name
        owner.destroy()
        assert _gone(name)

    def test_destroy_is_idempotent(self, arrays):
        owner = SharedArrays.create(arrays)
        owner.destroy()
        owner.destroy()  # must not raise

    def test_close_then_destroy_still_unlinks(self, arrays):
        owner = SharedArrays.create(arrays)
        name = owner.name
        owner.close()
        owner.destroy()
        assert _gone(name)

    def test_context_manager_cleans_up_on_exception(self, arrays):
        name = None
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArrays.create(arrays) as owner:
                name = owner.name
                raise RuntimeError("boom")
        assert _gone(name)

    def test_attacher_close_leaves_block_alive(self, arrays):
        with SharedArrays.create(arrays) as owner:
            view = SharedArrays.attach(owner.spec())
            view.close()
            assert not _gone(owner.name)
