"""Tests for the sharded worker pool: correctness, determinism,
exception-safe cleanup.

Pool cases use small datasets with a lowered ``min_shard`` so real
multi-process, multi-shard execution happens without benchmark-sized
inputs.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.parallel.pool as pool_mod
from repro.datasets.fixtures import clustered_pair, duplicate_pair, uniform_pair
from repro.engine.arrays import PointArray
from repro.engine.kernels import rcj_pair_indices
from repro.parallel.pool import parallel_rcj_pair_indices
from repro.parallel.sharedmem import SharedArrays

MIN_SHARD = 64  # force multi-shard plans at test sizes


def _arrays(points_pair):
    points_p, points_q = points_pair
    return PointArray.from_points(points_p), PointArray.from_points(points_q)


def _record_created_specs(monkeypatch):
    """Spy on SharedArrays.create, collecting block names."""
    names: list[str] = []
    original = SharedArrays.create.__func__

    def recording(cls, arrays):
        shared = original(cls, arrays)
        names.append(shared.name)
        return shared

    monkeypatch.setattr(
        SharedArrays, "create", classmethod(recording)
    )
    return names


def _all_unlinked(names):
    for name in names:
        try:
            block = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        block.close()
        return False
    return True


class TestPoolCorrectness:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_byte_identical_to_serial(self, workers):
        parr, qarr = _arrays(uniform_pair(700, 800, seed=21))
        ref_p, ref_q, _ = rcj_pair_indices(parr, qarr)
        p_idx, q_idx, ncand = parallel_rcj_pair_indices(
            parr, qarr, workers=workers, min_shard=MIN_SHARD
        )
        assert np.array_equal(ref_p, p_idx)
        assert np.array_equal(ref_q, q_idx)
        assert ncand >= len(p_idx)

    def test_identical_across_worker_counts(self):
        parr, qarr = _arrays(clustered_pair(600, 700, seed=22))
        results = [
            parallel_rcj_pair_indices(
                parr, qarr, workers=w, min_shard=MIN_SHARD
            )
            for w in (1, 2, 4)
        ]
        for p_idx, q_idx, _ in results[1:]:
            assert np.array_equal(results[0][0], p_idx)
            assert np.array_equal(results[0][1], q_idx)

    def test_selfjoin_mode(self):
        points_p, _ = _arrays(duplicate_pair(500, 500, seed=23))
        arr = points_p
        ref = rcj_pair_indices(arr, arr, exclude_same_oid=True)
        got = parallel_rcj_pair_indices(
            arr, arr, workers=2, exclude_same_oid=True, min_shard=MIN_SHARD
        )
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])

    def test_empty_inputs(self):
        empty = PointArray.empty()
        parr, _ = _arrays(uniform_pair(50, 50, seed=24))
        for a, b in ((empty, parr), (parr, empty), (empty, empty)):
            p_idx, q_idx, ncand = parallel_rcj_pair_indices(a, b, workers=2)
            assert len(p_idx) == len(q_idx) == ncand == 0

    def test_small_input_runs_in_process(self, monkeypatch):
        # Below the shard threshold no pool (and no shared memory) is
        # ever constructed.
        names = _record_created_specs(monkeypatch)
        parr, qarr = _arrays(uniform_pair(100, 100, seed=25))
        p_idx, _q, _c = parallel_rcj_pair_indices(parr, qarr, workers=4)
        assert names == []
        assert len(p_idx) > 0

    def test_invalid_workers_rejected(self):
        parr, qarr = _arrays(uniform_pair(30, 30, seed=26))
        with pytest.raises(ValueError, match="workers"):
            parallel_rcj_pair_indices(parr, qarr, workers=0)

    def test_stage_seconds_aggregated_across_shards(self):
        parr, qarr = _arrays(uniform_pair(700, 800, seed=27))
        stages: dict[str, float] = {}
        parallel_rcj_pair_indices(
            parr, qarr, workers=2, min_shard=MIN_SHARD, stage_seconds=stages
        )
        assert set(stages) & {"candidate", "verify"}
        assert all(v >= 0.0 for v in stages.values())

    def test_stage_seconds_accumulate_onto_existing_totals(self):
        # The accumulator sums — it must add to, not replace, what a
        # caller already collected.
        parr, qarr = _arrays(uniform_pair(700, 800, seed=28))
        stages = {"verify": 100.0}
        parallel_rcj_pair_indices(
            parr, qarr, workers=2, min_shard=MIN_SHARD, stage_seconds=stages
        )
        assert stages["verify"] > 100.0

    def test_stage_seconds_on_serial_fallback(self):
        # Below the shard threshold the serial kernel runs in-process;
        # the accumulator must still be fed.
        parr, qarr = _arrays(uniform_pair(100, 100, seed=29))
        stages: dict[str, float] = {}
        parallel_rcj_pair_indices(parr, qarr, workers=4, stage_seconds=stages)
        assert set(stages) & {"candidate", "verify"}


class TestPoolCleanup:
    def test_shared_memory_released_after_success(self, monkeypatch):
        names = _record_created_specs(monkeypatch)
        parr, qarr = _arrays(uniform_pair(600, 700, seed=27))
        parallel_rcj_pair_indices(parr, qarr, workers=2, min_shard=MIN_SHARD)
        assert names, "expected a real pooled run"
        assert _all_unlinked(names)

    def test_shared_memory_released_when_pool_creation_fails(
        self, monkeypatch
    ):
        names = _record_created_specs(monkeypatch)

        def exploding_executor(*args, **kwargs):
            raise RuntimeError("simulated pool crash")

        monkeypatch.setattr(pool_mod, "_make_executor", exploding_executor)
        parr, qarr = _arrays(uniform_pair(600, 700, seed=28))
        with pytest.raises(RuntimeError, match="simulated pool crash"):
            parallel_rcj_pair_indices(
                parr, qarr, workers=2, min_shard=MIN_SHARD
            )
        assert names, "expected shared memory to have been created"
        assert _all_unlinked(names)

    def test_shared_memory_released_when_a_task_fails(self, monkeypatch):
        names = _record_created_specs(monkeypatch)

        class ExplodingFuture:
            def result(self):
                raise RuntimeError("simulated worker death")

        class ExplodingPool:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args):
                return ExplodingFuture()

        monkeypatch.setattr(
            pool_mod, "_make_executor", lambda *a, **k: ExplodingPool()
        )
        parr, qarr = _arrays(uniform_pair(600, 700, seed=29))
        with pytest.raises(RuntimeError, match="simulated worker death"):
            parallel_rcj_pair_indices(
                parr, qarr, workers=2, min_shard=MIN_SHARD
            )
        assert _all_unlinked(names)
