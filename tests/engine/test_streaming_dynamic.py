"""Equivalence suite for the columnar dynamic backend.

The contract: after *any* interleaved insert/delete sequence, both
dynamic backends — :class:`DynamicRCJ` (R*-trees) and
:class:`DynamicArrayRCJ` (columns + batch kernels) — hold exactly the
pair set a from-scratch :func:`run_join` of the current populations
produces, and therefore exactly each other's.  Sequences are driven
over float geometry, degenerate lattices (duplicates, collinearity,
boundary ties) and hypothesis-generated update scripts.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicBackend, DynamicRCJ
from repro.datasets.synthetic import uniform
from repro.engine import make_dynamic, run_join
from repro.engine.streaming import DynamicArrayRCJ
from repro.geometry.point import Point


def scratch_keys(ps, qs):
    """From-scratch planner join of the current populations."""
    if not ps or not qs:
        return set()
    return run_join(ps, qs, engine="array").pair_keys()


def both_backends(ps=(), qs=()):
    return DynamicArrayRCJ(list(ps), list(qs)), DynamicRCJ(list(ps), list(qs))


class TestConstruction:
    def test_empty(self):
        dyn = DynamicArrayRCJ()
        assert len(dyn) == 0
        assert dyn.pairs == []
        assert "|P|=0" in repr(dyn)

    def test_initial_result_matches_planner(self):
        ps = uniform(120, seed=500)
        qs = uniform(100, seed=501, start_oid=1000)
        arr, obj = both_backends(ps, qs)
        assert arr.pair_keys() == obj.pair_keys() == scratch_keys(ps, qs)

    def test_satisfies_protocol(self):
        arr, obj = both_backends()
        assert isinstance(arr, DynamicBackend)
        assert isinstance(obj, DynamicBackend)

    def test_duplicate_oid_on_side_rejected(self):
        with pytest.raises(ValueError, match="duplicate oid"):
            DynamicArrayRCJ([Point(1, 1, 0), Point(2, 2, 0)], [])

    def test_invalid_side_rejected(self):
        dyn = DynamicArrayRCJ()
        with pytest.raises(ValueError, match="side"):
            dyn.insert(Point(0, 0, 0), "R")


class TestSingleUpdates:
    def test_insert_kills_blocked_pair(self):
        dyn = DynamicArrayRCJ([Point(0, 0, 0)], [Point(100, 0, 0)])
        assert dyn.pair_keys() == {(0, 0)}
        dyn.insert(Point(50, 0, 1), "P")
        assert dyn.pair_keys() == {(1, 0)}

    def test_delete_frees_blocked_pair(self):
        dyn = DynamicArrayRCJ(
            [Point(0, 0, 0), Point(50, 0, 1)], [Point(100, 0, 0)]
        )
        assert dyn.pair_keys() == {(1, 0)}
        dyn.delete(Point(50, 0, 1), "P")
        assert dyn.pair_keys() == {(0, 0)}

    def test_delete_missing_point_raises(self):
        dyn = DynamicArrayRCJ(uniform(10, seed=0), uniform(10, seed=1, start_oid=100))
        before = dyn.pair_keys()
        with pytest.raises(KeyError, match="999"):
            dyn.delete(Point(-5, -5, 999), "P")
        assert dyn.pair_keys() == before

    def test_delete_with_coincident_twin_frees_nothing(self):
        ps = [Point(50, 0, 0), Point(50, 0, 1)]
        qs = [Point(0, 0, 0), Point(100, 0, 1)]
        dyn = DynamicArrayRCJ(ps, qs)
        dyn.delete(Point(50, 0, 1), "P")
        assert dyn.pair_keys() == scratch_keys([ps[0]], qs)

    def test_delete_everything(self):
        ps = uniform(12, seed=502)
        qs = uniform(12, seed=503, start_oid=100)
        dyn = DynamicArrayRCJ(ps, qs)
        for p in ps:
            assert dyn.delete(p, "P")
        for q in qs:
            assert dyn.delete(q, "Q")
        assert len(dyn) == 0


class TestInterleavedEquivalence:
    """The satellite property: random interleaved insert/delete
    sequences end in exactly the from-scratch pair set — for both
    backends, checked against each other at every step."""

    def _drive(self, seed: int, steps: int, ps: list, qs: list) -> None:
        arr, obj = both_backends(ps, qs)
        rng = random.Random(seed)
        next_oid = 50_000
        for step in range(steps):
            op = rng.random()
            if op < 0.45 or len(ps) < 2 or len(qs) < 2:
                pt = Point(
                    rng.uniform(0, 10000), rng.uniform(0, 10000), next_oid
                )
                next_oid += 1
                side = "P" if rng.random() < 0.5 else "Q"
                (ps if side == "P" else qs).append(pt)
                arr.insert(pt, side)
                obj.insert(pt, side)
            elif op < 0.72:
                victim = rng.choice(ps)
                ps.remove(victim)
                assert arr.delete(victim, "P") and obj.delete(victim, "P")
            else:
                victim = rng.choice(qs)
                qs.remove(victim)
                assert arr.delete(victim, "Q") and obj.delete(victim, "Q")
            assert arr.pair_keys() == obj.pair_keys(), step
        assert arr.pair_keys() == scratch_keys(ps, qs)

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_float_geometry(self, seed):
        ps = uniform(35, seed=600 + seed)
        qs = uniform(35, seed=700 + seed, start_oid=1000)
        self._drive(seed, 50, ps, qs)

    def test_from_empty(self):
        self._drive(9, 60, [], [])

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),  # 0 insert-P, 1 insert-Q, 2 delete
                st.integers(0, 16).map(float),
                st.integers(0, 16).map(float),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_lattice_updates_match_both_backends(self, ops):
        """Degenerate coordinates (ties, duplicates, collinear runs):
        the two backends stay identical and end at the oracle."""
        arr, obj = both_backends()
        ps: list[Point] = []
        qs: list[Point] = []
        next_oid = 0
        rng = random.Random(13)
        for kind, x, y in ops:
            if kind in (0, 1):
                pt = Point(x, y, next_oid)
                next_oid += 1
                side = "P" if kind == 0 else "Q"
                (ps if kind == 0 else qs).append(pt)
                arr.insert(pt, side)
                obj.insert(pt, side)
            else:
                pool = (
                    ps
                    if (ps and (not qs or rng.random() < 0.5))
                    else qs
                )
                if not pool:
                    continue
                victim = rng.choice(pool)
                side = "P" if pool is ps else "Q"
                pool.remove(victim)
                assert arr.delete(victim, side)
                assert obj.delete(victim, side)
            assert arr.pair_keys() == obj.pair_keys()
        assert arr.pair_keys() == scratch_keys(ps, qs)


class TestFactory:
    def test_explicit_backends(self):
        ps = uniform(20, seed=800)
        qs = uniform(20, seed=801, start_oid=100)
        arr = make_dynamic(ps, qs, backend="array")
        obj = make_dynamic(ps, qs, backend="obj")
        assert isinstance(arr, DynamicArrayRCJ)
        assert isinstance(obj, DynamicRCJ)
        assert arr.pair_keys() == obj.pair_keys()

    def test_auto_fits_budget_picks_array(self):
        dyn = make_dynamic(uniform(30, seed=802), uniform(30, seed=803, start_oid=50))
        assert isinstance(dyn, DynamicArrayRCJ)

    def test_auto_over_budget_picks_disk_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "0.001")
        dyn = make_dynamic(
            uniform(30, seed=804), uniform(30, seed=805, start_oid=50)
        )
        assert isinstance(dyn, DynamicRCJ)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="dynamic backend"):
            make_dynamic(backend="quantum")

    def test_factory_result_maintains_updates(self):
        dyn = make_dynamic(backend="auto")
        dyn.insert(Point(100, 100, 0), "P")
        dyn.insert(Point(200, 200, 0), "Q")
        assert dyn.pair_keys() == {(0, 0)}
        assert dyn.delete(Point(100, 100, 0), "P")
        assert len(dyn) == 0
