"""Cross-engine equivalence for the parallel engine and auto planning.

Extends the equivalence suite of :mod:`tests.engine.test_equivalence_engines`
to the two entry points PR 4 added: ``engine="auto"`` (cost-based
planning) and ``engine="array-parallel"`` across worker counts.  The
property is the same one the whole system hangs on — identical result
sets — plus one the parallel engine adds: *byte-identical output* for
every worker count, not just set equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selfjoin import self_rcj
from repro.datasets.fixtures import equivalence_families, uniform_pair
from repro.engine import run_join
from repro.engine.arrays import PointArray
from repro.engine.kernels import canonical_pair_order, rcj_pair_indices
from repro.parallel.pool import parallel_rcj_pair_indices

#: Lowered shard floor so small suite datasets still exercise real
#: multi-shard pools.
MIN_SHARD = 64

FAMILIES = ("uniform", "clustered", "collinear", "duplicates", "single_point")


def _keys(points_p, points_q, **kwargs):
    return run_join(points_p, points_q, **kwargs).pair_keys()


class TestAutoEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_auto_matches_brute(self, family, seed):
        points_p, points_q = equivalence_families(seed=seed)[family]
        reference = _keys(points_p, points_q, algorithm="brute")
        assert (
            _keys(points_p, points_q, engine="auto", workers=4) == reference
        ), f"auto diverges from brute on {family!r} seed {seed}"

    def test_auto_attaches_plan(self):
        points_p, points_q = equivalence_families()["uniform"]
        report = run_join(points_p, points_q, engine="auto", workers=2)
        assert report.plan is not None
        assert report.plan.engine in ("array", "array-parallel", "obj")
        assert report.algorithm == report.plan.engine.upper()

    def test_auto_obj_fallback_matches_brute(self):
        # A one-byte budget forces the R-tree/buffer plan.
        points_p, points_q = equivalence_families()["uniform"]
        report = run_join(
            points_p, points_q, engine="auto", buffer_budget_bytes=1
        )
        assert report.algorithm == "OBJ"
        assert report.plan.engine == "obj"
        assert report.pair_keys() == _keys(
            points_p, points_q, algorithm="brute"
        )

    def test_explicit_engine_skips_planning(self):
        points_p, points_q = equivalence_families()["uniform"]
        report = run_join(points_p, points_q, engine="array")
        assert report.plan is None

    def test_unknown_engine_rejected(self):
        points_p, points_q = equivalence_families()["single_point"]
        with pytest.raises(ValueError, match="unknown engine"):
            run_join(points_p, points_q, engine="warp")

    @pytest.mark.parametrize("backend", ["rtree", "memory"])
    def test_auto_with_forced_backend_rejected(self, backend):
        points_p, points_q = equivalence_families()["single_point"]
        with pytest.raises(ValueError, match="auto"):
            run_join(points_p, points_q, algorithm="auto", backend=backend)

    def test_auto_obj_fallback_drops_array_tuning_hints(self):
        # k0 is an array-engine hint; under auto it must not crash the
        # planned R-tree path.
        points_p, points_q = equivalence_families()["uniform"]
        report = run_join(
            points_p, points_q, engine="auto", buffer_budget_bytes=1, k0=8
        )
        assert report.algorithm == "OBJ"
        assert report.pair_keys() == _keys(
            points_p, points_q, algorithm="brute"
        )


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("family", ("uniform", "clustered", "duplicates"))
    def test_parallel_matches_brute(self, family, workers):
        points_p, points_q = equivalence_families(seed=0)[family]
        reference = _keys(points_p, points_q, algorithm="brute")
        # min_shard=16 pushes even these deliberately small degenerate
        # families through a real multi-shard pool.
        got = _keys(
            points_p,
            points_q,
            engine="array-parallel",
            workers=workers,
            min_shard=16,
        )
        assert got == reference, (
            f"array-parallel(workers={workers}) diverges on {family!r}"
        )

    def test_selfjoin_parallel_and_auto_match_brute(self):
        points, _ = equivalence_families(seed=1)["clustered"]
        reference = {p.key() for p in self_rcj(points, algorithm="brute")}
        for algorithm in ("array-parallel", "auto"):
            got = {
                p.key()
                for p in self_rcj(points, algorithm=algorithm, workers=2)
            }
            assert got == reference, algorithm


class TestCanonicalOrder:
    """Satellite: merged shard output must be byte-identical across
    worker counts, which rests on the canonical pair order."""

    def test_serial_output_is_canonically_ordered(self):
        points_p, points_q = uniform_pair(400, 500, seed=31)
        parr = PointArray.from_points(points_p)
        qarr = PointArray.from_points(points_q)
        p_idx, q_idx, _ = rcj_pair_indices(parr, qarr)
        order = canonical_pair_order(p_idx, q_idx)
        assert np.array_equal(order, np.arange(len(order)))

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_parallel_output_byte_identical_across_workers(self, workers):
        points_p, points_q = uniform_pair(600, 800, seed=32)
        parr = PointArray.from_points(points_p)
        qarr = PointArray.from_points(points_q)
        ref_p, ref_q, _ = rcj_pair_indices(parr, qarr)
        p_idx, q_idx, _ = parallel_rcj_pair_indices(
            parr, qarr, workers=workers, min_shard=MIN_SHARD
        )
        assert p_idx.dtype == ref_p.dtype and q_idx.dtype == ref_q.dtype
        assert p_idx.tobytes() == ref_p.tobytes()
        assert q_idx.tobytes() == ref_q.tobytes()

    def test_canonical_order_contract(self):
        p = np.array([5, 1, 9, 1], dtype=np.int64)
        q = np.array([2, 2, 0, 1], dtype=np.int64)
        order = canonical_pair_order(p, q)
        pairs = list(zip(q[order].tolist(), p[order].tolist()))
        assert pairs == sorted(pairs)
