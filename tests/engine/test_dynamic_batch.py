"""Batched maintenance vs the per-event oracle.

``apply_batch`` must land on byte-identical pair sets to replaying the
same net events one at a time (deletes first, then inserts) — at
*every* batch boundary, for every backend, across batch sizes spanning
the lazy tiers' regimes (single-event through buffer-overflowing).
The per-event path is the oracle; a from-scratch ``run_join`` over the
final population pins both against the static engine.

Also pinned here: the batch validation contract (named ``KeyError`` /
``ValueError`` before *any* mutation), the strict tombstone- and
buffer-threshold boundaries, and trace-off equivalence.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dynamic import DynamicRCJ, validate_batch
from repro.engine.planner import run_join
from repro.engine.streaming import DynamicArrayRCJ
from repro.geometry.point import Point

BACKENDS = [DynamicArrayRCJ, DynamicRCJ]


def _uniform(rng: random.Random, n: int, start_oid: int) -> list[Point]:
    return [
        Point(rng.uniform(0, 1000), rng.uniform(0, 1000), start_oid + i)
        for i in range(n)
    ]


def _random_batch(rng, cur_p, cur_q, next_oid, size):
    """One net update batch against the current population: a mix of
    plain deletes, moves (delete + insert of the same oid) and fresh
    inserts totalling ``size`` net events."""
    inserts, deletes = [], []
    budget = size
    populations = {"P": cur_p, "Q": cur_q}
    while budget > 0:
        kind = rng.choice(("delete", "move", "insert"))
        side = rng.choice(("P", "Q"))
        cur = populations[side]
        deleted = {pt.oid for pt, s in deletes if s == side}
        if kind in ("delete", "move"):
            avail = [o for o in sorted(cur) if o not in deleted]
            if not avail:
                kind = "insert"
        if kind == "delete":
            oid = rng.choice(avail)
            deletes.append((cur[oid], side))
            budget -= 1
        elif kind == "move":
            if budget < 2:
                continue
            oid = rng.choice(avail)
            old = cur[oid]
            deletes.append((old, side))
            inserts.append(
                (
                    Point(
                        old.x + rng.uniform(-40, 40),
                        old.y + rng.uniform(-40, 40),
                        oid,
                    ),
                    side,
                )
            )
            budget -= 2
        else:
            inserts.append(
                (
                    Point(
                        rng.uniform(0, 1000), rng.uniform(0, 1000), next_oid
                    ),
                    side,
                )
            )
            next_oid += 1
            budget -= 1
    return inserts, deletes, next_oid


def _apply_to_population(cur_p, cur_q, inserts, deletes):
    for pt, side in deletes:
        (cur_p if side == "P" else cur_q).pop(pt.oid)
    for pt, side in inserts:
        (cur_p if side == "P" else cur_q)[pt.oid] = pt


@pytest.mark.parametrize("backend_cls", BACKENDS)
@pytest.mark.parametrize(
    "batch_size,windows,resident",
    [(1, 10, 25), (7, 6, 30), (64, 3, 60), (512, 1, 220)],
)
def test_batch_matches_sequential_at_every_boundary(
    backend_cls, batch_size, windows, resident
):
    rng = random.Random(97 * batch_size + windows)
    pts_p = _uniform(rng, resident, 0)
    pts_q = _uniform(rng, resident, 50_000)
    batched = backend_cls(pts_p, pts_q)
    sequential = backend_cls(pts_p, pts_q)
    cur_p = {p.oid: p for p in pts_p}
    cur_q = {q.oid: q for q in pts_q}
    next_oid = 100_000
    for _ in range(windows):
        inserts, deletes, next_oid = _random_batch(
            rng, cur_p, cur_q, next_oid, batch_size
        )
        batched.apply_batch(inserts, deletes)
        for pt, side in deletes:  # the oracle: deletes first, one event
            sequential.delete(pt, side)  # at a time, then inserts
        for pt, side in inserts:
            sequential.insert(pt, side)
        _apply_to_population(cur_p, cur_q, inserts, deletes)
        assert batched.pair_keys() == sequential.pair_keys()
    final = {
        p.key()
        for p in run_join(
            list(cur_p.values()), list(cur_q.values()), engine="array"
        ).pairs
    }
    assert batched.pair_keys() == final


@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_batch_matches_across_backends(backend_cls):
    """Both backends replay the same windows onto identical pair sets."""
    rng = random.Random(5)
    pts_p = _uniform(rng, 40, 0)
    pts_q = _uniform(rng, 40, 50_000)
    dyn = backend_cls(pts_p, pts_q)
    other = (
        DynamicRCJ if backend_cls is DynamicArrayRCJ else DynamicArrayRCJ
    )(pts_p, pts_q)
    cur_p = {p.oid: p for p in pts_p}
    cur_q = {q.oid: q for q in pts_q}
    next_oid = 100_000
    for _ in range(5):
        inserts, deletes, next_oid = _random_batch(
            rng, cur_p, cur_q, next_oid, 16
        )
        dyn.apply_batch(inserts, deletes)
        other.apply_batch(inserts, deletes)
        _apply_to_population(cur_p, cur_q, inserts, deletes)
        assert dyn.pair_keys() == other.pair_keys()


@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_move_in_one_batch(backend_cls):
    """delete + insert of the same oid in one batch is a legal move."""
    ps = [Point(0, 0, 0)]
    qs = [Point(100, 0, 0)]
    dyn = backend_cls(ps, qs)
    assert dyn.pair_keys() == {(0, 0)}
    dyn.apply_batch(
        inserts=[(Point(0, 50, 0), "P")], deletes=[(Point(0, 0, 0), "P")]
    )
    assert dyn.pair_keys() == {(0, 0)}


class TestValidation:
    """The shared ``validate_batch`` contract, through both backends."""

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_delete_absent_oid_raises_named_keyerror(self, backend_cls):
        dyn = backend_cls([Point(0, 0, 0)], [Point(100, 0, 0)])
        with pytest.raises(KeyError, match="999"):
            dyn.apply_batch(deletes=[(Point(5, 5, 999), "P")])

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_insert_present_oid_raises(self, backend_cls):
        dyn = backend_cls([Point(0, 0, 0)], [Point(100, 0, 0)])
        with pytest.raises(ValueError, match="already present"):
            dyn.apply_batch(inserts=[(Point(5, 5, 0), "P")])

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_duplicate_delete_raises(self, backend_cls):
        dyn = backend_cls([Point(0, 0, 0)], [Point(100, 0, 0)])
        with pytest.raises(ValueError):
            dyn.apply_batch(
                deletes=[(Point(0, 0, 0), "P"), (Point(0, 0, 0), "P")]
            )

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_duplicate_insert_raises(self, backend_cls):
        dyn = backend_cls([Point(0, 0, 0)], [Point(100, 0, 0)])
        with pytest.raises(ValueError):
            dyn.apply_batch(
                inserts=[(Point(5, 5, 7), "P"), (Point(6, 6, 7), "P")]
            )

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_invalid_side_raises(self, backend_cls):
        dyn = backend_cls([Point(0, 0, 0)], [Point(100, 0, 0)])
        with pytest.raises(ValueError):
            dyn.apply_batch(inserts=[(Point(5, 5, 7), "R")])

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_validation_failure_mutates_nothing(self, backend_cls):
        """A rejected batch is atomic: good events before the bad one
        must not have been applied."""
        ps = [Point(0, 0, 0), Point(50, 0, 1)]
        qs = [Point(100, 0, 0)]
        dyn = backend_cls(ps, qs)
        before = dyn.pair_keys()
        with pytest.raises(KeyError):
            dyn.apply_batch(
                inserts=[(Point(10, 10, 7), "P")],
                deletes=[(ps[1], "P"), (Point(1, 1, 999), "Q")],
            )
        assert dyn.pair_keys() == before
        # the in-batch delete of ps[1] must not have been applied:
        # deleting it now must still succeed.
        dyn.apply_batch(deletes=[(ps[1], "P")])
        assert dyn.pair_keys() == {(0, 0)}

    def test_validate_batch_function(self):
        has = lambda side, oid: oid == 1  # noqa: E731
        validate_batch(
            [(Point(0, 0, 2), "P")], [(Point(0, 0, 1), "Q")], has
        )
        with pytest.raises(KeyError):
            validate_batch([], [(Point(0, 0, 5), "P")], has)
        with pytest.raises(ValueError):
            validate_batch([(Point(0, 0, 1), "P")], [], has)


class TestCompactionThresholds:
    """The lazy tiers' strict (``>``) compaction triggers."""

    def _grid_backend(self, n=20):
        ps = [Point(10.0 * i, 0.0, i) for i in range(n)]
        qs = [Point(10.0 * i, 500.0, 1000 + i) for i in range(n)]
        return DynamicArrayRCJ(ps, qs), ps, qs

    def test_tombstones_at_fraction_do_not_compact(self, monkeypatch):
        monkeypatch.setenv("REPRO_DYN_TOMBSTONE_FRAC", "0.25")
        monkeypatch.setenv("REPRO_DYN_BUFFER_CAP", "100000")
        dyn, ps, _qs = self._grid_backend(20)
        # 5 of 20 dead == exactly frac * main_n: strictly-greater test
        # must NOT trigger a rebuild.
        dyn.apply_batch(deletes=[(p, "P") for p in ps[:5]])
        assert dyn.stats["rebuilds"] == 0
        assert dyn._p.tombstones == 5

    def test_one_more_tombstone_compacts(self, monkeypatch):
        monkeypatch.setenv("REPRO_DYN_TOMBSTONE_FRAC", "0.25")
        monkeypatch.setenv("REPRO_DYN_BUFFER_CAP", "100000")
        dyn, ps, _qs = self._grid_backend(20)
        dyn.apply_batch(deletes=[(p, "P") for p in ps[:6]])
        assert dyn.stats["rebuilds"] == 1
        assert dyn._p.tombstones == 0
        assert dyn.maintenance_stats()["tombstones"] == 0

    def test_buffer_at_cap_does_not_flush(self, monkeypatch):
        monkeypatch.setenv("REPRO_DYN_TOMBSTONE_FRAC", "100.0")
        monkeypatch.setenv("REPRO_DYN_BUFFER_CAP", "4")
        dyn, _ps, _qs = self._grid_backend(20)
        dyn.apply_batch(
            inserts=[(Point(3.0 * i, 100.0, 5000 + i), "P") for i in range(4)]
        )
        assert dyn.stats["rebuilds"] == 0
        assert dyn._p.buffered == 4

    def test_buffer_past_cap_flushes(self, monkeypatch):
        monkeypatch.setenv("REPRO_DYN_TOMBSTONE_FRAC", "100.0")
        monkeypatch.setenv("REPRO_DYN_BUFFER_CAP", "4")
        dyn, _ps, _qs = self._grid_backend(20)
        dyn.apply_batch(
            inserts=[(Point(3.0 * i, 100.0, 5000 + i), "P") for i in range(5)]
        )
        assert dyn.stats["rebuilds"] == 1
        assert dyn._p.buffered == 0
        assert dyn._p.main_count == 25

    def test_tiny_thresholds_preserve_equivalence(self, monkeypatch):
        """Compacting nearly every batch lands on the same pair sets."""
        monkeypatch.setenv("REPRO_DYN_TOMBSTONE_FRAC", "0.05")
        monkeypatch.setenv("REPRO_DYN_BUFFER_CAP", "2")
        rng = random.Random(11)
        pts_p = _uniform(rng, 30, 0)
        pts_q = _uniform(rng, 30, 50_000)
        eager = DynamicArrayRCJ(pts_p, pts_q)
        lazy = DynamicArrayRCJ(pts_p, pts_q)
        cur_p = {p.oid: p for p in pts_p}
        cur_q = {q.oid: q for q in pts_q}
        next_oid = 100_000
        for _ in range(6):
            inserts, deletes, next_oid = _random_batch(
                rng, cur_p, cur_q, next_oid, 12
            )
            lazy.apply_batch(inserts, deletes)
            for pt, side in deletes:
                eager.delete(pt, side)
            for pt, side in inserts:
                eager.insert(pt, side)
            _apply_to_population(cur_p, cur_q, inserts, deletes)
            assert lazy.pair_keys() == eager.pair_keys()
        assert lazy.stats["rebuilds"] > 0


class TestBatchTracing:
    def test_trace_off_is_equivalent(self, monkeypatch):
        rng = random.Random(23)
        pts_p = _uniform(rng, 30, 0)
        pts_q = _uniform(rng, 30, 50_000)
        inserts = [(Point(rng.uniform(0, 1000), rng.uniform(0, 1000), 99_000 + i), "P") for i in range(4)]
        deletes = [(pts_q[i], "Q") for i in range(4)]

        monkeypatch.setenv("REPRO_TRACE", "1")
        traced = DynamicArrayRCJ(pts_p, pts_q)
        traced.apply_batch(inserts, deletes)
        assert traced.last_batch_trace is not None
        names = {sp.name for sp in traced.last_batch_trace.walk()}
        assert "dynamic-batch" in names

        monkeypatch.setenv("REPRO_TRACE", "0")
        silent = DynamicArrayRCJ(pts_p, pts_q)
        silent.apply_batch(inserts, deletes)
        assert silent.last_batch_trace is None
        assert silent.pair_keys() == traced.pair_keys()

    def test_batch_stats_accumulate(self):
        dyn = DynamicArrayRCJ([Point(0, 0, 0)], [Point(100, 0, 0)])
        dyn.apply_batch(inserts=[(Point(50, 50, 1), "P")])
        dyn.apply_batch(deletes=[(Point(50, 50, 1), "P")])
        assert dyn.stats["batches"] == 2
        assert dyn.stats["events"] == 2
        stats = dyn.maintenance_stats()
        assert set(stats) >= {"batches", "events", "rebuilds", "tombstones", "buffered"}
