"""Cross-algorithm equivalence: every engine, identical result sets.

The property the whole system hangs on: INJ, BIJ, OBJ (R-tree backend),
the brute-force oracle, the Gabriel comparator and the vectorized array
engine all compute the *same* RCJ — on well-behaved data and on every
degenerate family (clustered, collinear, duplicate-riddled,
single-point).  All engines run through the unified planner so the
dispatch layer is exercised too.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

import repro.engine.kernels as kernels
from repro.core.selfjoin import self_rcj
from repro.datasets.fixtures import equivalence_families, make_points
from repro.engine import run_join
from tests.conftest import continuous_pointset, lattice_pointset

#: ``auto`` rides along: on suite-sized data the planner resolves it to
#: the serial array engine, pinning the planning dispatch itself; the
#: parallel engine and the planner's other branches get their own
#: coverage in test_parallel_equivalence.py.
ENGINES = ("inj", "bij", "obj", "brute", "gabriel", "array", "auto")

#: (family, seed) grid: every dataset family under a few seeds.
FAMILY_CASES = [
    (family, seed)
    for family in ("uniform", "clustered", "collinear", "duplicates", "single_point")
    for seed in (0, 1, 2)
]


def _keys(points_p, points_q, algorithm, **kwargs):
    return run_join(points_p, points_q, algorithm=algorithm, **kwargs).pair_keys()


class TestFamilyEquivalence:
    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_all_engines_agree(self, family, seed):
        points_p, points_q = equivalence_families(seed=seed)[family]
        reference = _keys(points_p, points_q, "brute")
        for engine in ENGINES:
            assert _keys(points_p, points_q, engine) == reference, (
                f"{engine} diverges from brute on {family!r} seed {seed}"
            )

    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_array_engine_selfjoin_agrees(self, family, seed):
        points_p, _ = equivalence_families(seed=seed)[family]
        reference = {p.key() for p in self_rcj(points_p, algorithm="brute")}
        got = {p.key() for p in self_rcj(points_p, algorithm="array")}
        assert got == reference, f"self-join diverges on {family!r} seed {seed}"


class TestEscalationPaths:
    """Force the array engine's rarely-taken stage-3 paths."""

    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_delaunay_backstop_agrees(self, family, seed, monkeypatch):
        # Work limit 0 routes every escalated probe through the
        # Delaunay candidate backstop instead of the exact scan.
        monkeypatch.setattr(kernels, "_SCAN_WORK_LIMIT", 0)
        points_p, points_q = equivalence_families(seed=seed)[family]
        assert _keys(points_p, points_q, "array") == _keys(
            points_p, points_q, "brute"
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_tiny_windows_escalate_correctly(self, seed):
        # k0=1 maximises escalation through stages 2 and 3.
        points_p, points_q = equivalence_families(seed=seed)["uniform"]
        assert _keys(points_p, points_q, "array", k0=1) == _keys(
            points_p, points_q, "brute"
        )

    def test_coincident_cluster_larger_than_any_window(self):
        # Regression: more coincident P points than the widened window
        # leaves the probe with zero valid coverage arcs; the scan stage
        # must not treat the placeholder arcs as certificates (it once
        # dropped the beyond-window duplicates' pairs).
        from repro.geometry.point import Point

        n = kernels._WIDE_K + 2
        points_p = [Point(100.0, 0.0, i) for i in range(n)]
        points_q = [Point(0.0, 0.0, n)]
        assert _keys(points_p, points_q, "array") == _keys(
            points_p, points_q, "brute"
        )

    def test_coincident_cluster_through_delaunay_backstop(self, monkeypatch):
        from repro.geometry.point import Point

        monkeypatch.setattr(kernels, "_SCAN_WORK_LIMIT", 0)
        n = kernels._WIDE_K + 2
        points_p = [Point(100.0, 0.0, i) for i in range(n)] + [
            Point(50.0, 3.0, n),
            Point(-40.0, -7.0, n + 1),
        ]
        points_q = [Point(0.0, 0.0, 500), Point(90.0, 1.0, 501)]
        assert _keys(points_p, points_q, "array") == _keys(
            points_p, points_q, "brute"
        )


class TestPropertyEquivalence:
    @given(lattice_pointset(min_size=1, max_size=30),
           lattice_pointset(min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_array_matches_brute_on_lattice(self, coords_p, coords_q):
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=len(points_p))
        assert _keys(points_p, points_q, "array") == _keys(
            points_p, points_q, "brute"
        )

    @given(continuous_pointset(min_size=1, max_size=40),
           continuous_pointset(min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_array_matches_brute_on_continuous(self, coords_p, coords_q):
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=len(points_p))
        assert _keys(points_p, points_q, "array") == _keys(
            points_p, points_q, "brute"
        )


class TestPlannerDispatch:
    def test_unknown_algorithm(self):
        points_p, points_q = equivalence_families()["single_point"]
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_join(points_p, points_q, algorithm="quantum")

    def test_backend_mismatch(self):
        points_p, points_q = equivalence_families()["single_point"]
        with pytest.raises(ValueError, match="backend"):
            run_join(points_p, points_q, algorithm="array", backend="rtree")
        with pytest.raises(ValueError, match="backend"):
            run_join(points_p, points_q, algorithm="inj", backend="memory")

    def test_empty_inputs(self):
        points_p, points_q = equivalence_families()["uniform"]
        for engine in ("brute", "array"):
            assert run_join([], points_q, algorithm=engine).pairs == []
            assert run_join(points_p, [], algorithm=engine).pairs == []

    def test_reports_carry_algorithm_and_counts(self):
        points_p, points_q = equivalence_families()["uniform"]
        report = run_join(points_p, points_q, algorithm="array")
        assert report.algorithm == "ARRAY"
        assert report.candidate_count >= report.result_count > 0
        assert report.cpu_seconds > 0.0
        assert report.node_accesses == 0  # no R-tree was touched
