"""Cross-engine equivalence suite for the streamed top-k layer.

The contract under test: every ``run_topk`` route returns *the first k
entries of the canonically sorted full join* — same pairs, same order,
byte for byte.  The canonical order is
:func:`repro.engine.streaming.pair_order_key` (ascending squared pair
distance, ties by ``(p.oid, q.oid)``); distance ties cannot occur on
the random-float families, so the R-tree heap's arrival order agrees
with the canonical order there and all three engines are comparable
exactly.  Degenerate (tie-riddled) geometry is covered as identity
sets plus exact diameter multisets.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import TOPK_ROWS, build_workload, run_algorithm
from repro.datasets.fixtures import (
    clustered_pair,
    collinear_pair,
    duplicate_pair,
    single_point_pair,
    uniform_pair,
)
from repro.datasets.synthetic import uniform
from repro.engine import run_join, run_topk
from repro.engine.streaming import (
    pair_order_key,
    sort_pairs_by_diameter,
    stream_pairs_by_diameter,
    topk_array,
)
from repro.engine.arrays import PointArray

ENGINES = ("array", "obj", "auto")


def keys_in_order(pairs):
    return [pair_order_key(p) for p in pairs]


@pytest.fixture(scope="module")
def workload():
    points_p, points_q = uniform_pair(300, 340, seed=21)
    full = run_join(points_p, points_q, algorithm="gabriel")
    return points_p, points_q, sort_pairs_by_diameter(full.pairs)


class TestPrefixEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("k", (1, 10, None))
    def test_first_k_prefix_matches_sorted_full_join(
        self, workload, engine, k
    ):
        points_p, points_q, ref = workload
        k = len(ref) if k is None else k
        report = run_topk(points_p, points_q, k, engine=engine)
        assert keys_in_order(report.pairs) == keys_in_order(ref[:k])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_clustered_prefix(self, engine):
        points_p, points_q = clustered_pair(260, 280, seed=31)
        ref = sort_pairs_by_diameter(
            run_join(points_p, points_q, algorithm="gabriel").pairs
        )
        report = run_topk(points_p, points_q, 25, engine=engine)
        assert keys_in_order(report.pairs) == keys_in_order(ref[:25])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_single_point_prefix(self, engine):
        points_p, points_q = single_point_pair(seed=4)
        ref = sort_pairs_by_diameter(
            run_join(points_p, points_q, algorithm="brute").pairs
        )
        report = run_topk(points_p, points_q, 3, engine=engine)
        assert keys_in_order(report.pairs) == keys_in_order(ref[:3])

    @pytest.mark.parametrize(
        "family",
        (collinear_pair, duplicate_pair),
        ids=("collinear", "duplicates"),
    )
    def test_degenerate_families_full_enumeration(self, family):
        # Tie-riddled geometry: arrival order among exactly tied
        # diameters is not canonical on the R-tree heap, so the pinned
        # contract is identity + exact sorted diameters, per engine.
        points_p, points_q = family(40, 45, seed=7)
        ref = run_join(points_p, points_q, algorithm="brute")
        k = len(ref.pairs) + 5
        want_keys = ref.pair_keys()
        want_diams = sorted(pr.diameter for pr in ref.pairs)
        for engine in ENGINES:
            report = run_topk(points_p, points_q, k, engine=engine)
            assert report.pair_keys() == want_keys, engine
            got_diams = [pr.diameter for pr in report.pairs]
            assert got_diams == sorted(got_diams) == want_diams, engine

    def test_selfjoin_mode(self, workload):
        points_p, _, _ = workload
        full = run_join(
            points_p, points_p, algorithm="array", exclude_same_oid=True
        )
        ref = sort_pairs_by_diameter(full.pairs)
        report = run_topk(
            points_p, points_p, 15, engine="array", exclude_same_oid=True
        )
        assert keys_in_order(report.pairs) == keys_in_order(ref[:15])
        assert all(pr.p.oid != pr.q.oid for pr in report.pairs)
        # Self-joins tie every mirrored pair <a,b>/<b,a> at the exact
        # same distance, and the R-tree heap breaks ties by arrival —
        # so the obj route (and auto, which may plan it) is pinned
        # set-wise (same diameters, valid pairs), not byte-wise.
        for engine in ("obj", "auto"):
            report = run_topk(
                points_p, points_p, 15, engine=engine, exclude_same_oid=True
            )
            assert [pr.diameter for pr in report.pairs] == [
                pr.diameter for pr in ref[:15]
            ], engine
            assert report.pair_keys() <= full.pair_keys()
            assert all(pr.p.oid != pr.q.oid for pr in report.pairs)


class TestRunTopkApi:
    def test_k_nonpositive(self, workload):
        points_p, points_q, _ = workload
        for engine in ENGINES:
            assert run_topk(points_p, points_q, 0, engine=engine).pairs == []

    def test_k_exceeds_result(self, workload):
        points_p, points_q, ref = workload
        report = run_topk(points_p, points_q, len(ref) + 999, engine="array")
        assert len(report.pairs) == len(ref)

    def test_empty_inputs(self):
        points_p, _ = uniform_pair(10, 10, seed=1)
        for engine in ("array", "auto"):
            assert run_topk([], points_p, 5, engine=engine).pairs == []
            assert run_topk(points_p, [], 5, engine=engine).pairs == []

    def test_unknown_engine_rejected(self, workload):
        points_p, points_q, _ = workload
        with pytest.raises(ValueError, match="top-k engine"):
            run_topk(points_p, points_q, 5, engine="quantum")

    def test_engine_aliases(self, workload):
        points_p, points_q, ref = workload
        via_pw = run_topk(points_p, points_q, 5, engine="pointwise")
        via_par = run_topk(points_p, points_q, 5, engine="array-parallel")
        assert via_pw.algorithm == "TOPK-OBJ"
        assert via_par.algorithm == "TOPK-ARRAY"
        assert keys_in_order(via_pw.pairs) == keys_in_order(via_par.pairs)

    def test_run_join_mode_topk_routes(self, workload):
        points_p, points_q, ref = workload
        report = run_join(
            points_p, points_q, engine="array", mode="topk", k=7
        )
        assert report.algorithm == "TOPK-ARRAY"
        assert keys_in_order(report.pairs) == keys_in_order(ref[:7])

    def test_run_join_mode_topk_requires_k(self, workload):
        points_p, points_q, _ = workload
        with pytest.raises(ValueError, match="requires k"):
            run_join(points_p, points_q, mode="topk")
        with pytest.raises(ValueError, match="mode"):
            run_join(points_p, points_q, mode="sideways")

    def test_auto_attaches_plan_with_measurements(self, workload):
        points_p, points_q, _ = workload
        report = run_topk(points_p, points_q, 200, engine="auto")
        assert report.plan is not None
        assert report.plan.engine in ("array", "obj")
        assert report.plan.reasons
        if report.plan.engine == "array":
            assert set(report.plan.measured_seconds) >= {"candidate"}

    def test_explicit_array_records_stage_seconds(self, workload):
        points_p, points_q, _ = workload
        report = run_topk(points_p, points_q, 10, engine="array")
        assert "candidate" in report.stage_seconds
        assert "verify" in report.stage_seconds
        assert all(v >= 0.0 for v in report.stage_seconds.values())

    def test_obj_route_reports_node_accesses(self, workload):
        points_p, points_q, _ = workload
        report = run_topk(points_p, points_q, 5, engine="obj")
        assert report.algorithm == "TOPK-OBJ"
        assert report.node_accesses > 0


class TestLaziness:
    def test_small_k_touches_a_fraction_of_the_join(self):
        points_p, points_q = uniform_pair(3000, 3000, seed=41)
        full = run_join(points_p, points_q, engine="array")
        small = run_topk(points_p, points_q, 10, engine="array")
        # The stream enumerates only the first radius bands: its
        # verified-candidate volume must be far under the bulk join's.
        assert small.candidate_count < full.candidate_count / 20

    def test_stream_is_sorted_and_resumable(self):
        points_p, points_q = uniform_pair(400, 400, seed=43)
        parr = PointArray.from_points(points_p)
        qarr = PointArray.from_points(points_q)
        counters: dict = {}
        got = list(
            stream_pairs_by_diameter(parr, qarr, k_hint=4, counters=counters)
        )
        d_sqs = [t[0] for t in got]
        assert d_sqs == sorted(d_sqs)
        assert counters["bands"] >= 2  # the cursor actually resumed
        ref = run_join(points_p, points_q, engine="array")
        assert {
            (parr.oid[pi], qarr.oid[qi]) for _d, pi, qi in got
        } == ref.pair_keys()

    def test_fallback_band_matches_full_join(self, monkeypatch):
        import repro.engine.streaming as streaming

        # Force the dense-band fallback on a modest input and check the
        # stream still emits the exact sorted join.
        monkeypatch.setattr(streaming, "_FALLBACK_BAND_PAIRS", 50)
        points_p, points_q = uniform_pair(300, 300, seed=47)
        counters: dict = {}
        parr = PointArray.from_points(points_p)
        qarr = PointArray.from_points(points_q)
        got = list(
            stream_pairs_by_diameter(
                parr, qarr, k_hint=1000, counters=counters
            )
        )
        assert counters.get("fallback")
        ref = sort_pairs_by_diameter(
            run_join(points_p, points_q, engine="array").pairs
        )
        assert [
            (parr.oid[pi], qarr.oid[qi]) for _d, pi, qi in got
        ] == [pr.key() for pr in ref]
        d_sqs = [t[0] for t in got]
        assert d_sqs == sorted(d_sqs)

    def test_topk_array_duplicate_riddled_start_radius(self):
        # Coincident P/Q points give a zero k-th NN distance; the
        # stream must still start and find the radius-zero pairs first.
        points_p, points_q = duplicate_pair(30, 30, seed=3, lattice=4)
        pairs, _ = topk_array(points_p, points_q, 5)
        assert len(pairs) == 5
        diams = [pr.diameter for pr in pairs]
        assert diams == sorted(diams)
        assert diams[0] == 0.0


class TestBenchRows:
    def test_topk_rows_agree_with_sorted_reference(self):
        points_p, points_q = uniform_pair(250, 260, seed=51)
        workload = build_workload(points_q, points_p)
        full = run_algorithm(workload, "ARRAY")
        want = keys_in_order(sort_pairs_by_diameter(full.pairs)[:12])
        for name in TOPK_ROWS:
            report = run_algorithm(workload, name, k=12)
            assert keys_in_order(report.pairs) == want, name

    def test_smoke_topk_passes(self, capsys):
        from repro.bench.runner import smoke

        assert smoke(n=600, workers=2, topk=True) == 0
        out = capsys.readouterr().out
        assert "TOPK-ARRAY" in out and "passed" in out
