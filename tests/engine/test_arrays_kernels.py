"""Unit tests for the engine's columnar representation and kernels."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.datasets.fixtures import uniform_pair
from repro.engine.arrays import PointArray
from repro.engine.kernels import (
    cone_cover,
    halfplane_prune_pairs,
    halfplane_prune_window,
    knn_candidate_blocks,
    verify_rings_batch,
)
from repro.geometry.point import Point


class TestPointArray:
    def test_round_trip_preserves_everything(self):
        points = [Point(1.5, -2.0, 7), Point(0.0, 3.25, 42)]
        arr = PointArray.from_points(points)
        assert arr.to_points() == points
        assert len(arr) == 2
        assert arr[1] == points[1]
        assert list(arr) == points

    def test_from_coords_assigns_sequential_oids(self):
        arr = PointArray.from_coords([(0.0, 1.0), (2.0, 3.0)], start_oid=5)
        assert arr.oid.tolist() == [5, 6]
        assert arr.coords().tolist() == [[0.0, 1.0], [2.0, 3.0]]

    def test_empty(self):
        arr = PointArray.from_points([])
        assert len(arr) == 0
        assert arr.to_points() == []

    def test_immutable(self):
        arr = PointArray.from_coords([(0.0, 0.0)])
        with pytest.raises(AttributeError):
            arr.x = np.zeros(1)
        with pytest.raises(ValueError):
            arr.x[0] = 1.0  # numpy write flag

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PointArray([0.0, 1.0], [0.0])
        with pytest.raises(ValueError):
            PointArray([0.0], [0.0], oid=[1, 2])
        with pytest.raises(ValueError):
            PointArray.from_coords(np.zeros((2, 3)))


class TestHalfplaneKernels:
    def test_window_prune_matches_pointwise_halfplane(self):
        # One probe, three neighbours: n1 at (1, 0) prunes n2 at (3, 0)
        # (n2 is behind n1's Ψ− line) but not n3 at (0, 2).
        qx = np.array([0.0])
        qy = np.array([0.0])
        nx = np.array([[1.0, 3.0, 0.0]])
        ny = np.array([[0.0, 0.0, 2.0]])
        pruned = halfplane_prune_window(qx, qy, nx, ny)
        assert pruned.tolist() == [[False, True, False]]

    def test_coincident_neighbours_never_prune(self):
        qx = np.array([0.0])
        qy = np.array([0.0])
        nx = np.array([[0.0, 2.0, 2.0]])  # first neighbour == probe
        ny = np.array([[0.0, 0.0, 0.0]])  # two coincident candidates
        pruned = halfplane_prune_window(qx, qy, nx, ny)
        # The probe-coincident point has a degenerate Ψ−; the coincident
        # duplicates sit on each other's ring boundary: nothing dies.
        assert not pruned.any()

    def test_pair_prune_is_exact_brute_negation(self):
        # Pruner exactly on the ring boundary of <c, q> contributes a
        # dot of exactly zero and must not prune.
        pruned = halfplane_prune_pairs(
            cx=np.array([2.0]),
            cy=np.array([0.0]),
            px=np.array([[1.0]]),  # midpoint of the ring: strictly inside
            py=np.array([[1.0]]),  # ... at (1, 1): on the boundary
            qx=np.array([0.0]),
            qy=np.array([0.0]),
        )
        assert pruned.tolist() == [False]
        pruned = halfplane_prune_pairs(
            cx=np.array([2.0]),
            cy=np.array([0.0]),
            px=np.array([[1.0]]),
            py=np.array([[0.5]]),  # strictly inside the ring
            qx=np.array([0.0]),
            qy=np.array([0.0]),
        )
        assert pruned.tolist() == [True]


class TestConeCover:
    def test_surrounded_probe_is_covered(self):
        # Eight close neighbours all around, window radius much larger.
        angles = np.linspace(0.0, 2 * np.pi, 9)[:-1]
        nx = np.cos(angles)[None, :]
        ny = np.sin(angles)[None, :]
        ndist = np.ones((1, 8))
        ndist[0, -1] = 10.0  # pretend the window reaches far out
        covered = cone_cover(
            np.zeros(1), np.zeros(1), nx, ny, np.sort(ndist), 1e-12
        )
        assert covered.tolist() == [True]

    def test_one_sided_probe_is_not_covered(self):
        # All neighbours to the right: directions to the left are open.
        nx = np.array([[1.0, 1.2, 1.4, 2.0]])
        ny = np.array([[0.1, -0.1, 0.2, 0.0]])
        ndist = np.hypot(nx, ny)
        covered = cone_cover(np.zeros(1), np.zeros(1), nx, ny, ndist, 1e-12)
        assert covered.tolist() == [False]

    def test_coincident_neighbours_certify_nothing(self):
        nx = np.zeros((1, 4))
        ny = np.zeros((1, 4))
        ndist = np.zeros((1, 4))
        covered = cone_cover(np.zeros(1), np.zeros(1), nx, ny, ndist, 1e-12)
        assert covered.tolist() == [False]


class TestVerifyRings:
    def test_blocker_kills_candidate_and_boundary_does_not(self):
        # Union holds the endpoints, one strict insider, one boundary
        # point; pair 0 dies, pair 1 (elsewhere) survives.
        ux = np.array([0.0, 2.0, 1.0, 1.0, 10.0, 12.0])
        uy = np.array([0.0, 0.0, 0.5, 1.0, 10.0, 10.0])
        tree = cKDTree(np.column_stack((ux, uy)))
        alive = verify_rings_batch(
            px=np.array([0.0, 10.0]),
            py=np.array([0.0, 10.0]),
            qx=np.array([2.0, 12.0]),
            qy=np.array([0.0, 10.0]),
            union_tree=tree,
            ux=ux,
            uy=uy,
        )
        assert alive.tolist() == [False, True]

    def test_coincident_pair_trivially_survives(self):
        ux = np.array([5.0, 5.0, 5.0])
        uy = np.array([5.0, 5.0, 5.0])
        tree = cKDTree(np.column_stack((ux, uy)))
        alive = verify_rings_batch(
            px=np.array([5.0]),
            py=np.array([5.0]),
            qx=np.array([5.0]),
            qy=np.array([5.0]),
            union_tree=tree,
            ux=ux,
            uy=uy,
        )
        assert alive.tolist() == [True]


class TestCandidateGeneration:
    def test_candidates_are_a_superset_of_true_pairs(self):
        from repro.core.brute import brute_force_rcj

        points_p, points_q = uniform_pair(80, 90, seed=3)
        parr = PointArray.from_points(points_p)
        qarr = PointArray.from_points(points_q)
        q_idx, p_idx = knn_candidate_blocks(parr, qarr)
        candidates = {
            (int(parr.oid[pi]), int(qarr.oid[qi]))
            for qi, pi in zip(q_idx, p_idx)
        }
        # Pairs blocked only by Q points still pass candidate
        # generation (blockers there come from P alone), so compare
        # against the P-side-only join.
        truth = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert truth <= candidates

    def test_candidates_deduplicated(self):
        points_p, points_q = uniform_pair(50, 60, seed=4)
        parr = PointArray.from_points(points_p)
        qarr = PointArray.from_points(points_q)
        q_idx, p_idx = knn_candidate_blocks(parr, qarr, k0=1)
        seen = set(zip(q_idx.tolist(), p_idx.tolist()))
        assert len(seen) == len(q_idx)

    def test_empty_sides(self):
        empty = PointArray.empty()
        full = PointArray.from_coords([(0.0, 0.0), (1.0, 1.0)])
        assert knn_candidate_blocks(empty, full)[0].size == 0
        assert knn_candidate_blocks(full, empty)[0].size == 0
