"""Cross-family equivalence suite for the operator-algebra pipelines.

Every join family declared in :mod:`repro.engine.families` must produce
a pair set identical to its pointwise reference oracle on every dataset
family — uniform, clustered, collinear, tie-riddled duplicates and the
single-point degenerate — and the shardable families must additionally
be byte-identical across worker counts.  The suite also pins the
tie-canonical ordering contract of the R-tree top-k routes (exact
squared distance, ties broken by ascending oid) on duplicate-riddled
data, and checks the streamed RCJ pipeline against the planner's top-k
route.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.fixtures import (
    duplicate_pair,
    equivalence_families,
    uniform_pair,
)
from repro.engine import run_family_join, run_join, run_topk
from repro.engine.arrays import PointArray
from repro.engine.families import (
    FAMILY_NAMES,
    SHARDABLE_FAMILIES,
    build_family_pipeline,
    describe_family_pipeline,
    explain_family,
)
from repro.engine.operators import JoinContext

FIXTURES = sorted(equivalence_families(seed=3).keys())

#: (family, parameter) grid covering a tight and a loose setting each.
CASES = [
    ("epsilon", {"eps": 20.0}),
    ("epsilon", {"eps": 60.0}),
    ("knn", {"k": 1}),
    ("knn", {"k": 4}),
    ("kcp", {"k": 1}),
    ("kcp", {"k": 12}),
    ("cij", {}),
]


def ordered_keys(report):
    return [pair.key() for pair in report.pairs]


@pytest.fixture(scope="module")
def families():
    return equivalence_families(seed=3)


@pytest.mark.parametrize("fixture", FIXTURES)
@pytest.mark.parametrize(
    "family,params", CASES, ids=[f"{f}-{p}" for f, p in CASES]
)
def test_pipeline_matches_pointwise(families, fixture, family, params):
    """The vectorized pipeline of every family reproduces its pointwise
    oracle exactly — same pairs, same canonical order — on every
    dataset family, tie-riddled duplicates included."""
    points_p, points_q = families[fixture]
    oracle = run_family_join(
        points_p, points_q, family, engine="pointwise", **params
    )
    pipeline = run_family_join(
        points_p, points_q, family, engine="array", **params
    )
    assert ordered_keys(pipeline) == ordered_keys(oracle)
    assert pipeline.stage_seconds, "pipeline runs must record stage times"


@pytest.mark.parametrize("family", SHARDABLE_FAMILIES)
def test_parallel_matches_serial(family):
    """Hilbert-sharded parallel execution of the shardable families is
    identical to the serial pipeline for one and two workers."""
    points_p, points_q = uniform_pair(300, 340, seed=17)
    params = {"eps": 55.0} if family == "epsilon" else {"k": 3}
    serial = run_family_join(
        points_p, points_q, family, engine="array", **params
    )
    assert serial.pairs, "fixture must produce pairs for real coverage"
    for workers in (1, 2):
        parallel = run_family_join(
            points_p,
            points_q,
            family,
            engine="array-parallel",
            workers=workers,
            min_shard=8,
            **params,
        )
        assert ordered_keys(parallel) == ordered_keys(serial)
        assert parallel.stage_seconds


@pytest.mark.parametrize("family", ("kcp", "cij"))
def test_unshardable_families_coerce_parallel(family):
    """kcp/cij accept engine='array-parallel' but run the serial
    pipeline (no probe-disjoint decomposition exists for them)."""
    points_p, points_q = uniform_pair(80, 90, seed=5)
    params = {"k": 6} if family == "kcp" else {}
    report = run_family_join(
        points_p, points_q, family, engine="array-parallel", **params
    )
    assert report.algorithm == f"{family.upper()}-ARRAY"
    oracle = run_family_join(
        points_p, points_q, family, engine="pointwise", **params
    )
    assert ordered_keys(report) == ordered_keys(oracle)


def test_topk_rtree_route_tie_canonical():
    """Regression: the R-tree k-closest-pairs route emits ties in
    canonical (d, p.oid, q.oid) order on duplicate-riddled data, so its
    prefix for any k equals the brute-force canonical prefix."""
    points_p, points_q = duplicate_pair(60, 70, seed=9)
    parr = PointArray.from_points(points_p)
    qarr = PointArray.from_points(points_q)
    dx = parr.x[:, None] - qarr.x[None, :]
    dy = parr.y[:, None] - qarr.y[None, :]
    d_sq = dx * dx + dy * dy
    pi, qi = np.unravel_index(np.argsort(d_sq, axis=None), d_sq.shape)
    brute = sorted(
        zip(
            d_sq[pi, qi].tolist(),
            parr.oid[pi].tolist(),
            qarr.oid[qi].tolist(),
        )
    )
    for k in (1, 7, 40):
        expected = [(p_oid, q_oid) for _d, p_oid, q_oid in brute[:k]]
        oracle = run_family_join(
            points_p, points_q, "kcp", engine="pointwise", k=k
        )
        assert ordered_keys(oracle) == expected
        pipe = run_family_join(
            points_p, points_q, "kcp", engine="array", k=k
        )
        assert ordered_keys(pipe) == expected


def test_knn_tie_canonical_on_duplicates():
    """kNN ties (equidistant q, duplicate locations) resolve to the
    ascending-oid neighbours in both the oracle and the pipeline."""
    points_p, points_q = duplicate_pair(50, 60, seed=21)
    for k in (1, 3, 6):
        oracle = run_family_join(
            points_p, points_q, "knn", engine="pointwise", k=k
        )
        pipe = run_family_join(
            points_p, points_q, "knn", engine="array", k=k
        )
        assert ordered_keys(pipe) == ordered_keys(oracle)
        counts: dict[int, int] = {}
        for p_oid, _q_oid in ordered_keys(pipe):
            counts[p_oid] = counts.get(p_oid, 0) + 1
        assert set(counts.values()) == {min(k, len(points_q))}


def test_rcj_streamed_pipeline_matches_topk():
    """The RCJ composed from the generic stages (band -> prune ->
    verify -> take-smallest) equals the planner's streamed top-k."""
    points_p, points_q = uniform_pair(150, 160, seed=8)
    k = 12
    expected = run_topk(points_p, points_q, k=k, engine="array")
    pipeline = build_family_pipeline("rcj", k=k)
    ctx = JoinContext(
        PointArray.from_points(points_p),
        PointArray.from_points(points_q),
        points_p=list(points_p),
        points_q=list(points_q),
    )
    block = pipeline.run(ctx)
    got = [
        (points_p[pi].oid, points_q[qi].oid)
        for pi, qi in zip(block.p_idx.tolist(), block.q_idx.tolist())
    ]
    assert got == [pair.key() for pair in expected.pairs]


def test_take_smallest_early_stop():
    """The expanding-band source stops once the sink's completeness
    certificate covers k pairs — far short of the cross product."""
    points_p, points_q = uniform_pair(400, 400, seed=2)
    report = run_family_join(points_p, points_q, "kcp", engine="array", k=5)
    assert report.result_count == 5
    assert report.candidate_count < len(points_p) * len(points_q) // 10


def test_run_join_family_dispatch_and_plan():
    """run_join(family=...) is the single front door: auto dispatch
    records the family plan and the executed engine on the report."""
    points_p, points_q = uniform_pair(200, 220, seed=4)
    report = run_join(points_p, points_q, family="epsilon", eps=40.0)
    assert report.plan is not None
    assert report.plan.engine in ("array", "array-parallel", "pointwise")
    assert report.algorithm.startswith("EPSILON-")
    assert report.stage_seconds or report.plan.engine == "pointwise"

    knn = run_join(points_p, points_q, family="knn", k=3, engine="array")
    assert knn.algorithm == "KNN-ARRAY"
    assert set(knn.stage_seconds) >= {"knn", "collect"}

    oracle = run_family_join(
        points_p, points_q, "epsilon", engine="pointwise", eps=40.0
    )
    assert ordered_keys(report) == ordered_keys(oracle)


def test_stage_seconds_names_per_family():
    """Each family's report carries the wall times of exactly its
    declared operator chain."""
    points_p, points_q = uniform_pair(120, 130, seed=6)
    expected = {
        "epsilon": {"range", "distance", "collect"},
        "knn": {"knn", "collect"},
        "kcp": {"band", "collect"},
        "cij": {"cells", "verify", "collect"},
    }
    params = {"epsilon": {"eps": 35.0}, "knn": {"k": 2}, "kcp": {"k": 9}}
    for family, names in expected.items():
        report = run_family_join(
            points_p,
            points_q,
            family,
            engine="array",
            **params.get(family, {}),
        )
        assert set(report.stage_seconds) >= names, family


def test_describe_and_explain():
    points_p, points_q = uniform_pair(50, 50, seed=1)
    assert "->" in describe_family_pipeline("epsilon", eps=10.0)
    for family in FAMILY_NAMES:
        params = {
            "epsilon": {"eps": 10.0},
            "knn": {"k": 2},
            "kcp": {"k": 2},
        }.get(family, {})
        text = explain_family(points_p, points_q, family, **params)
        assert "pipeline:" in text


def test_parameter_validation():
    points_p, points_q = uniform_pair(10, 10, seed=0)
    with pytest.raises(ValueError):
        run_family_join(points_p, points_q, "epsilon")  # eps missing
    with pytest.raises(ValueError):
        run_family_join(points_p, points_q, "knn")  # k missing
    with pytest.raises(ValueError):
        run_family_join(points_p, points_q, "cij", k=3)
    with pytest.raises(ValueError):
        run_family_join(points_p, points_q, "voronoi", k=3)
    with pytest.raises(ValueError):
        run_family_join(
            points_p, points_q, "epsilon", eps=5.0, engine="gpu"
        )
    with pytest.raises(ValueError):
        run_join(points_p, points_q, eps=5.0)  # eps is family-only
    with pytest.raises(ValueError):
        run_join(points_p, points_q, family="epsilon", eps=5.0, mode="topk")


def test_empty_and_degenerate_inputs():
    points_p, points_q = uniform_pair(20, 20, seed=0)
    for family, params in CASES:
        empty = run_family_join([], points_q, family, engine="array", **params)
        assert empty.pairs == []
        empty = run_family_join(points_p, [], family, engine="array", **params)
        assert empty.pairs == []
    for family in ("knn", "kcp"):
        zero = run_family_join(
            points_p, points_q, family, engine="array", k=0
        )
        assert zero.pairs == []
