"""Accounting regression: cost counters pinned for a fixed workload.

The paper's figures are built from ``JoinReport`` counters, so silent
drift in node-access, page-fault or candidate accounting corrupts every
benchmark table without failing a single correctness test.  This module
pins the exact counter values of each algorithm on one fixed-seed
workload.  The numbers themselves are not meaningful — the *stability*
is.  If an intentional change to traversal order, buffer policy,
filtering or the array engine's candidate generation moves them,
re-derive the constants (run the algorithms and copy the new values)
and justify the change in the commit.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import build_workload, run_algorithm
from repro.datasets.fixtures import uniform_pair

#: algorithm -> (candidate_count, node_accesses, page_faults, result_count)
#: on uniform_pair(120, 150, seed=7) with the default 1% buffer.
EXPECTED = {
    "INJ": (594, 1384, 1384, 259),
    "BIJ": (1139, 56, 56, 259),
    "OBJ": (361, 56, 56, 259),
    "ARRAY": (551, 0, 0, 259),
}


@pytest.fixture(scope="module")
def workload():
    points_p, points_q = uniform_pair(120, 150, seed=7)
    return build_workload(points_q, points_p)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_counters_pinned(workload, name):
    report = run_algorithm(workload, name)
    got = (
        report.candidate_count,
        report.node_accesses,
        report.page_faults,
        report.result_count,
    )
    assert got == EXPECTED[name], (
        f"{name} cost counters drifted: "
        f"(candidates, node_accesses, page_faults, results) = {got}, "
        f"pinned {EXPECTED[name]}.  If the change is intentional, "
        f"re-derive the constants in {__file__}."
    )


def test_counters_are_reset_between_runs(workload):
    """A second run must reproduce the same counters bit-for-bit."""
    first = run_algorithm(workload, "OBJ")
    second = run_algorithm(workload, "OBJ")
    assert (
        first.candidate_count,
        first.node_accesses,
        first.page_faults,
    ) == (
        second.candidate_count,
        second.node_accesses,
        second.page_faults,
    )


def test_array_report_has_no_io_charge(workload):
    """The memory backend reports zero modelled I/O by construction."""
    report = run_algorithm(workload, "ARRAY")
    assert report.page_faults == 0
    assert report.io_seconds == 0.0
    assert report.buffer_hits == 0
