"""Engine ablation — pointwise INJ vs the vectorized array engine.

Not a figure from the paper: this bench motivates the
:mod:`repro.engine` subsystem by measuring the same join executed
point-at-a-time over Python objects (INJ) and in batch over numpy
arrays (the ``array`` engine), on 20k–100k-point-class workloads
(scaled by ``REPRO_SCALE`` like every other bench; run with
``REPRO_BENCH_N=20000`` for the full-size measurement).

Assertions: the two engines return identical pair sets, and — at
meaningful sizes — the vectorized engine wins by at least 5x wall
clock.  The array engine additionally covers a 100k-class size and a
clustered workload on its own, where pointwise execution would dominate
the suite's runtime.
"""

from __future__ import annotations

from repro.bench.runner import build_workload, run_algorithm
from repro.engine import run_join
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

#: Sizes are paper-style cardinalities, divided by REPRO_SCALE.
COMPARED_SIZE = 20_000
ARRAY_ONLY_SIZE = 100_000

#: The speedup floor is only asserted at full-scale runs; scaled-down
#: smoke runs (REPRO_SCALE=64 -> a few hundred points) measure mostly
#: constant overheads.
MIN_SPEEDUP = 5.0
ASSERT_ABOVE_N = 2_000


def _run(datasets, sizes):
    rows = []
    checks = []
    for label, n, engines in sizes:
        if label == "clustered":
            points_p, points_q = datasets.clustered_pair(n, n, seed=180)
        else:
            points_p, points_q = datasets.uniform_pair(n, n, seed=160)
        if engines == ("ARRAY",):
            # No pointwise competitor: skip the (expensive, unused)
            # R-tree builds and run the engine directly.
            reports = {"ARRAY": run_join(points_p, points_q, algorithm="array")}
        else:
            workload = build_workload(points_q, points_p)
            reports = {name: run_algorithm(workload, name) for name in engines}
        for name, report in reports.items():
            rows.append(
                [
                    label,
                    n,
                    name,
                    report.result_count,
                    report.candidate_count,
                    f"{report.cpu_seconds:.3f}",
                ]
            )
        if "INJ" in reports and "ARRAY" in reports:
            checks.append((n, reports["INJ"], reports["ARRAY"]))
    return rows, checks


def test_engine_vectorized(benchmark, scale, datasets):
    n_small = scale.synthetic_n(COMPARED_SIZE)
    n_large = scale.synthetic_n(ARRAY_ONLY_SIZE)
    sizes = [
        ("uniform", n_small, ("INJ", "ARRAY")),
        ("clustered", n_small, ("INJ", "ARRAY")),
    ]
    if n_large != n_small:
        # Under REPRO_BENCH_N both sizes collapse to the override and
        # this row would just repeat row 1's ARRAY measurement.
        sizes.append(("uniform", n_large, ("ARRAY",)))
    rows, checks = benchmark.pedantic(
        lambda: _run(datasets, sizes), rounds=1, iterations=1
    )
    table = format_table(
        ["data", "n", "engine", "results", "candidates", "wall(s)"],
        rows,
        title=(
            "Engine ablation: pointwise INJ vs vectorized array engine "
            "(|P| = |Q| = n)"
        ),
    )
    emit("engine_vectorized", table)

    assert checks, "no INJ/ARRAY comparison ran"
    for n, inj_report, array_report in checks:
        # Identical result sets, always — speed means nothing otherwise.
        assert inj_report.pair_keys() == array_report.pair_keys()
        if n >= ASSERT_ABOVE_N:
            speedup = inj_report.cpu_seconds / max(
                array_report.cpu_seconds, 1e-9
            )
            assert speedup >= MIN_SPEEDUP, (
                f"array engine only {speedup:.1f}x faster than INJ at n={n}"
            )
