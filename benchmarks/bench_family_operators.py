"""Join-family operator benchmark — pointwise oracle vs pipeline.

Times every join family three ways on one uniform workload: the
pointwise reference oracle (R-tree / object code), the serial columnar
pipeline, and — for the shardable families — the Hilbert-sharded
parallel pipeline.  Pair sets are asserted identical across all three
on every run; at full scale (``REPRO_FAMILY_BENCH_N >= 20000``) the
pipeline must additionally beat the oracle by ``SPEEDUP_FLOOR`` on the
figure-10–12 families.

Results go to ``benchmarks/results/BENCH_families.json`` (plus the
usual text table).  The checked-in ``BENCH_families.json`` at the repo
root records one full-scale run.

Run with::

    REPRO_FAMILY_BENCH_N=20000 python -m pytest \
        benchmarks/bench_family_operators.py -q -s
"""

from __future__ import annotations

import json
import os

import numpy as np
from scipy.spatial import cKDTree

from repro.datasets.fixtures import uniform_pair
from repro.engine.families import SHARDABLE_FAMILIES, run_family_join
from repro.evaluation.report import format_table

from benchmarks.conftest import RESULTS_DIR, emit

#: |P| of the benchmark workload (|Q| is 1.25x).  The acceptance run
#: uses 20000; the default keeps routine invocations under a minute.
BENCH_N = int(os.environ.get("REPRO_FAMILY_BENCH_N", "4000"))

#: CIJ inputs are capped: its pointwise oracle's geometric step is the
#: cost driver on both paths, so scale adds runtime without signal.
CIJ_CAP = 2500

#: Required pipeline-over-oracle speedup at full scale (ISSUE floor).
SPEEDUP_FLOOR = 10.0

WORKERS = int(os.environ.get("REPRO_FAMILY_BENCH_WORKERS", "2"))


def _mean_nn_distance(points) -> float:
    arr = np.array([(p.x, p.y) for p in points])
    dists, _ = cKDTree(arr).query(arr, k=2)
    return float(dists[:, 1].mean())


def _bench_cases(points_p, points_q):
    """(family, params, P, Q) rows sized to the workload density.

    ε is density-normalised (2x the mean NN distance) so the output
    stays a few pairs per point at every scale: much larger ε makes
    both engines spend their time materialising a near-quadratic
    result, which measures Python list construction rather than the
    join.  kcp's k is capped to bound the R-tree oracle's heap run.
    """
    eps = 2.0 * _mean_nn_distance(points_p + points_q)
    k_kcp = max(100, min(500, len(points_p) // 20))
    cap = min(CIJ_CAP, len(points_p))
    return [
        ("epsilon", {"eps": eps}, points_p, points_q),
        ("knn", {"k": 8}, points_p, points_q),
        ("kcp", {"k": k_kcp}, points_p, points_q),
        ("cij", {}, points_p[:cap], points_q[:cap]),
    ]


def _best_of(repeats: int, fam_p, fam_q, family, engine, **kwargs):
    """Best-of-``repeats`` run: the report with the smallest wall time."""
    best = None
    for _ in range(repeats):
        report = run_family_join(fam_p, fam_q, family, engine=engine, **kwargs)
        if best is None or report.cpu_seconds < best.cpu_seconds:
            best = report
    return best


def test_family_operator_bench():
    points_p, points_q = uniform_pair(BENCH_N, BENCH_N + BENCH_N // 4, seed=13)
    results: dict = {
        "n_p": len(points_p),
        "n_q": len(points_q),
        "workers": WORKERS,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": BENCH_N >= 20000,
        "families": {},
    }
    rows = []
    for family, params, fam_p, fam_q in _bench_cases(points_p, points_q):
        # kcp's oracle is the long pole; measure it once.  The cheap
        # runs take best-of-N to suppress container timing noise.
        oracle_reps = 1 if family == "kcp" else 2
        oracle = _best_of(
            oracle_reps, fam_p, fam_q, family, "pointwise", **params
        )
        pipeline = _best_of(3, fam_p, fam_q, family, "array", **params)
        want = [pair.key() for pair in oracle.pairs]
        assert [pair.key() for pair in pipeline.pairs] == want, family

        entry = {
            "params": {k: round(v, 3) for k, v in params.items()},
            "n_p": len(fam_p),
            "n_q": len(fam_q),
            "pairs": oracle.result_count,
            "pointwise_s": round(oracle.cpu_seconds, 4),
            "array_s": round(pipeline.cpu_seconds, 4),
            "speedup_array": round(
                oracle.cpu_seconds / max(pipeline.cpu_seconds, 1e-9), 1
            ),
            "stage_seconds": {
                k: round(v, 4) for k, v in pipeline.stage_seconds.items()
            },
        }
        if family in SHARDABLE_FAMILIES:
            parallel = run_family_join(
                fam_p,
                fam_q,
                family,
                engine="array-parallel",
                workers=WORKERS,
                min_shard=max(64, len(fam_p) // (2 * WORKERS)),
                **params,
            )
            assert [pair.key() for pair in parallel.pairs] == want, family
            entry["array_parallel_s"] = round(parallel.cpu_seconds, 4)
            entry["speedup_parallel"] = round(
                oracle.cpu_seconds / max(parallel.cpu_seconds, 1e-9), 1
            )
        results["families"][family] = entry
        rows.append(
            [
                family,
                entry["pairs"],
                f"{entry['pointwise_s']:.3f}",
                f"{entry['array_s']:.3f}",
                f"{entry.get('array_parallel_s', float('nan')):.3f}",
                f"{entry['speedup_array']:.1f}x",
            ]
        )
        # The acceptance floor: at full scale the vectorized pipeline
        # must beat its pointwise oracle by 10x on the fig10-12
        # families (the CIJ's cost sits in the shared geometric step).
        if BENCH_N >= 20000 and family in ("epsilon", "knn", "kcp"):
            assert entry["speedup_array"] >= SPEEDUP_FLOOR, (
                family,
                entry["speedup_array"],
            )

    table = format_table(
        ["family", "pairs", "pointwise(s)", "array(s)", "parallel(s)",
         "speedup"],
        rows,
        title=(
            f"Join-family operators: |P|={len(points_p)} "
            f"|Q|={len(points_q)} workers={WORKERS}"
        ),
    )
    emit("BENCH_families", table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_families.json"), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
