"""Ablation — incremental top-k RCJ vs full join + sort.

The tourist-recommendation application consumes RCJ pairs in ascending
ring-diameter order.  This ablation quantifies the benefit of the
incremental evaluation (`repro.core.topk`): for small k it reads a tiny
fraction of the nodes the full join touches, while producing exactly
the prefix of the sorted full result.
"""

from repro.bench.runner import build_workload, run_algorithm
from repro.core.topk import top_k_rcj
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_N = 100_000
K_VALUES = (10, 100, 1000)


def _run(n: int):
    points_q = uniform(n, seed=220)
    points_p = uniform(n, seed=221, start_oid=n)
    workload = build_workload(points_q, points_p)

    full = run_algorithm(workload, "OBJ")
    full_sorted = sorted(full.pairs, key=lambda pr: pr.diameter)
    full_cost = full.node_accesses

    rows = []
    for k in K_VALUES:
        workload.reset()
        top = top_k_rcj(workload.tree_p, workload.tree_q, k)
        cost = (
            workload.tree_p.node_accesses + workload.tree_q.node_accesses
        )
        # Exactness: the top-k equals the prefix of the sorted full join.
        assert [p.diameter for p in top] == [
            p.diameter for p in full_sorted[:k]
        ]
        rows.append([k, cost, full_cost, f"{100 * cost / full_cost:.1f}%"])
    return rows


def test_ablation_topk(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    rows = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    table = format_table(
        ["k", "top-k node acc", "full-join node acc", "fraction"],
        rows,
        title=f"Ablation: incremental top-k RCJ vs full join, UI |P|=|Q|={n}",
    )
    emit("ablation_topk", table)
    # Small k is cheaper than the full join; the advantage erodes as k
    # grows (per-pair verification descends from the roots), so the
    # incremental route is a small-k tool — the honest crossover.
    assert rows[0][1] < rows[0][2]
    assert rows[0][1] <= rows[1][1] <= rows[2][1]
    fraction_small = rows[0][1] / rows[0][2]
    fraction_large = rows[2][1] / rows[2][2]
    assert fraction_small < fraction_large
