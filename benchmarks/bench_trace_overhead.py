"""Tracing overhead bench — the observability layer must be ~free.

Not a figure from the paper: this bench guards the overhead budget of
:mod:`repro.obs` on the 20k-point uniform canary (scaled by
``REPRO_SCALE`` like every other bench; run with ``REPRO_BENCH_N=20000``
for the full-size measurement).

Two budgets, asserted only at meaningful sizes where the join dominates
constant costs:

- **disabled** (< 2%): with ``REPRO_TRACE=0`` every seam
  (:func:`~repro.obs.trace.span`, :func:`~repro.obs.trace.add_counter`,
  :func:`~repro.obs.trace.stage_timer`) degrades to one attribute
  lookup.  Measured as a conservative bound — the micro-benchmarked
  per-call no-op cost times the number of seam crossings a traced run
  records, divided by the untraced wall time — because the seams are
  too cheap to resolve by differencing two wall-clock runs.
- **traced** (< 10%): the direct ratio of traced to untraced wall time,
  best-of-``REPRO_TRACE_BENCH_ROUNDS`` (default 3) runs each.

Results are emitted as the usual text table plus
``benchmarks/results/BENCH_trace_overhead.json`` so CI archives the
series.  Both modes must return identical pair sets — overhead numbers
mean nothing if observation changes the answer.
"""

from __future__ import annotations

import json
import os
import time

from repro.engine.planner import run_join
from repro.evaluation.report import format_table
from repro.obs.trace import add_counter, span, stage_timer, trace

from benchmarks.conftest import RESULTS_DIR, emit

#: Paper-style canary cardinality, divided by REPRO_SCALE.
CANARY_SIZE = 20_000

MAX_DISABLED_OVERHEAD = 0.02
MAX_TRACED_OVERHEAD = 0.10

#: Budgets are asserted only at full-size runs; scaled-down smoke runs
#: time mostly interpreter constants and fixture setup.
ASSERT_ABOVE_N = 2_000

ROUNDS = int(os.environ.get("REPRO_TRACE_BENCH_ROUNDS", "3"))

#: Iterations for the no-op seam micro-benchmark.
NOOP_ITERS = 50_000


def _best_of(fn, rounds):
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best, result = dt, out
    return best, result


def _noop_seam_seconds() -> float:
    """Per-call cost of one disabled instrumentation seam, averaged
    over the three seam kinds (no active trace on this thread)."""
    t0 = time.perf_counter()
    for _ in range(NOOP_ITERS):
        with span("x"):
            pass
        with stage_timer(None, "x"):
            pass
        add_counter("x")
    return (time.perf_counter() - t0) / (3 * NOOP_ITERS)


def _seam_crossings(root) -> int:
    """Instrumentation events a traced run recorded: one per span plus
    one per counter key bumped on it (a lower bound on calls, an upper
    bound on distinct code paths — good enough for a budget check)."""
    return sum(1 + len(node.counters) for node in root.walk())


def test_trace_overhead(benchmark, scale, datasets):
    n = scale.synthetic_n(CANARY_SIZE)
    points_p, points_q = datasets.uniform_pair(n, n, seed=230)

    def _join():
        return run_join(points_p, points_q, engine="array")

    old = os.environ.get("REPRO_TRACE")

    def _measure():
        os.environ["REPRO_TRACE"] = "0"
        t_disabled, untraced = _best_of(_join, ROUNDS)
        os.environ["REPRO_TRACE"] = "1"
        t_traced, traced = _best_of(_join, ROUNDS)
        # Verify the kill switch actually switched.
        assert untraced.trace is None and traced.trace is not None
        os.environ["REPRO_TRACE"] = "0"
        noop = _noop_seam_seconds()
        return t_disabled, t_traced, untraced, traced, noop

    try:
        t_disabled, t_traced, untraced, traced, noop = benchmark.pedantic(
            _measure, rounds=1, iterations=1
        )
    finally:
        if old is None:
            os.environ.pop("REPRO_TRACE", None)
        else:
            os.environ["REPRO_TRACE"] = old

    crossings = _seam_crossings(traced.trace)
    disabled_overhead = (crossings * noop) / max(t_disabled, 1e-9)
    traced_overhead = t_traced / max(t_disabled, 1e-9) - 1.0

    table = format_table(
        ["n", "spans", "seams", "off(s)", "on(s)", "off_ovh", "on_ovh"],
        [[
            n,
            len(traced.trace),
            crossings,
            f"{t_disabled:.4f}",
            f"{t_traced:.4f}",
            f"{disabled_overhead:.2%}",
            f"{traced_overhead:+.2%}",
        ]],
        title=(
            "Tracing overhead on the uniform canary (array engine, "
            f"best of {ROUNDS})"
        ),
    )
    emit("trace_overhead", table)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_trace_overhead.json"), "w"
    ) as f:
        json.dump(
            {
                "n": n,
                "rounds": ROUNDS,
                "spans": len(traced.trace),
                "seam_crossings": crossings,
                "noop_seam_seconds": noop,
                "disabled_wall_seconds": t_disabled,
                "traced_wall_seconds": t_traced,
                "disabled_overhead": disabled_overhead,
                "traced_overhead": traced_overhead,
                "budget": {
                    "disabled": MAX_DISABLED_OVERHEAD,
                    "traced": MAX_TRACED_OVERHEAD,
                },
                "pairs_identical": (
                    untraced.pair_keys() == traced.pair_keys()
                ),
                "asserted": n >= ASSERT_ABOVE_N,
            },
            f,
            indent=2,
        )

    # Observation must never change the answer, at any size.
    assert untraced.pair_keys() == traced.pair_keys()

    if n >= ASSERT_ABOVE_N:
        assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled seams cost {disabled_overhead:.2%} of the "
            f"untraced run (budget {MAX_DISABLED_OVERHEAD:.0%})"
        )
        assert traced_overhead < MAX_TRACED_OVERHEAD, (
            f"tracing added {traced_overhead:.2%} wall time "
            f"(budget {MAX_TRACED_OVERHEAD:.0%})"
        )
