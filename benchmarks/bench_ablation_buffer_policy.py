"""Ablation — buffer replacement policy under the paper's workload.

The paper fixes LRU; this ablation re-runs OBJ with FIFO and CLOCK
replacement at the paper's default buffer fraction (1 % of the total
tree size).  Expected shape: the join's depth-first locality favours
recency — LRU and its CLOCK approximation fault comparably, FIFO never
beats them by more than noise.
"""

from repro.core.bij import bij
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table
from repro.rtree.bulk import bulk_load
from repro.storage.policies import POLICIES

from benchmarks.conftest import emit

PAPER_N = 200_000
#: 5 % instead of the paper's 1 % default: at the reduced REPRO_SCALE the
#: trees are small and a 1 % buffer holds ~2 pages, which no policy can
#: differentiate.
BUFFER_FRACTION = 0.05


def _run(n: int):
    points_q = uniform(n, seed=290)
    points_p = uniform(n, seed=291, start_oid=n)
    out = {}
    for policy, make in POLICIES.items():
        tree_q = bulk_load(points_q, name="TQ")
        tree_p = bulk_load(points_p, name="TP")
        total_pages = tree_q.disk.num_pages + tree_p.disk.num_pages
        buf = make(max(1, int(total_pages * BUFFER_FRACTION)))
        tree_q.attach_buffer(buf)
        tree_p.attach_buffer(buf)
        report = bij(tree_q, tree_p, symmetric=True)
        out[policy] = report
    return out


def test_ablation_buffer_policy(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    results = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    rows = [
        [
            policy,
            report.result_count,
            report.page_faults,
            report.buffer_hits,
            f"{report.io_seconds:.2f}",
        ]
        for policy, report in results.items()
    ]
    table = format_table(
        ["policy", "results", "faults", "hits", "io(s)"],
        rows,
        title=(
            f"Ablation: buffer replacement policy, OBJ, UI |P|=|Q|={n}, "
            f"buffer {BUFFER_FRACTION:.0%}"
        ),
    )
    emit("ablation_buffer_policy", table)

    # Correctness is policy-independent.
    keys = {p: r.pair_keys() for p, r in results.items()}
    assert keys["LRU"] == keys["FIFO"] == keys["CLOCK"]
    # Recency-aware policies do not lose to FIFO beyond noise on the
    # depth-first workload.
    assert results["LRU"].page_faults <= results["FIFO"].page_faults * 1.1
    assert results["CLOCK"].page_faults <= results["FIFO"].page_faults * 1.1
