"""Figure 15 — effect of the buffer size, uniform data.

Paper's findings: all algorithms speed up as the buffer grows (I/O time
falls); OBJ is best at every size and the gap to its competitors is
widest at small buffers.
"""

from repro.bench.runner import build_workload, run_algorithm
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_N = 200_000

#: The paper sweeps 0.2 %..5 % of ~10,000 total pages (20..500 frames).
#: At the reduced default scale the trees hold only ~150 pages, where
#: those same fractions all round to a couple of frames and the sweep
#: degenerates; the fractions below restore a comparable *absolute*
#: frame range (a few .. tens of pages), preserving the figure's shape
#: (see EXPERIMENTS.md).
BUFFER_FRACTIONS = (0.01, 0.02, 0.05, 0.1, 0.2)


def _run(n: int):
    points_q = uniform(n, seed=150)
    points_p = uniform(n, seed=151, start_oid=n)
    workload = build_workload(points_q, points_p)
    results = {}
    for fraction in BUFFER_FRACTIONS:
        workload.set_buffer_fraction(fraction)
        for algo in ("INJ", "BIJ", "OBJ"):
            results[(fraction, algo)] = run_algorithm(workload, algo)
    return results


def test_fig15_buffer_size(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    results = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    rows = []
    for (fraction, algo), report in results.items():
        rows.append(
            [
                f"{fraction * 100:.1f}%",
                algo,
                report.page_faults,
                f"{report.io_seconds:.2f}",
                f"{report.modeled_cpu_seconds:.2f}",
                f"{report.modeled_total_seconds:.2f}",
            ]
        )
    table = format_table(
        ["buffer", "algo", "faults", "io(s)", "cpu(s)", "total(s)"],
        rows,
        title=f"Figure 15: effect of buffer size, UI |P|=|Q|={n}",
    )
    emit("fig15_buffer_size", table)

    for algo in ("INJ", "BIJ", "OBJ"):
        io_series = [
            results[(f, algo)].io_seconds for f in BUFFER_FRACTIONS
        ]
        # I/O time falls as the buffer grows (end-to-end comparison;
        # adjacent steps may be noisy on tiny trees).
        assert io_series[0] > io_series[-1], algo

    smallest, largest = BUFFER_FRACTIONS[0], BUFFER_FRACTIONS[-1]
    for fraction in (smallest, largest):
        totals = {
            algo: results[(fraction, algo)].modeled_total_seconds
            for algo in ("INJ", "BIJ", "OBJ")
        }
        assert totals["OBJ"] <= totals["BIJ"] * 1.05, fraction
        assert totals["OBJ"] < totals["INJ"], fraction
    # The OBJ-vs-INJ gap widens at small buffers.
    gap_small = (
        results[(smallest, "INJ")].modeled_total_seconds
        - results[(smallest, "OBJ")].modeled_total_seconds
    )
    gap_large = (
        results[(largest, "INJ")].modeled_total_seconds
        - results[(largest, "OBJ")].modeled_total_seconds
    )
    assert gap_small > gap_large
