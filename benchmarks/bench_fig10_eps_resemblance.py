"""Figure 10 — resemblance of the ε-range join to RCJ, vs ε.

Paper's finding: as ε grows, precision falls and recall rises; no ε
achieves both high precision and high recall, so RCJ cannot be emulated
by an ε-join.
"""

import math

from repro.core.gabriel import gabriel_rcj
from repro.datasets.real import join_combination
from repro.engine.families import run_family_join
from repro.evaluation.report import format_series
from repro.evaluation.resemblance import precision_recall

from benchmarks.conftest import emit


def _mean_nn_distance(points) -> float:
    """Mean nearest-neighbour distance (density-normalised ε unit)."""
    from scipy.spatial import cKDTree
    import numpy as np

    arr = np.array([(p.x, p.y) for p in points])
    dists, _ = cKDTree(arr).query(arr, k=2)
    return float(dists[:, 1].mean())


def _sweep(combo: str, scale_factor: int, engine: str):
    points_q, points_p = join_combination(combo, scale=scale_factor)
    rcj_keys = {r.key() for r in gabriel_rcj(points_p, points_q)}
    # The paper sweeps ε in absolute units over the full-size datasets;
    # the equivalent density-normalised sweep uses the mean NN distance.
    unit = _mean_nn_distance(points_p + points_q)
    multipliers = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    precisions, recalls = [], []
    for m in multipliers:
        eps = unit * m
        eps_keys = run_family_join(
            points_p, points_q, "epsilon", engine=engine, eps=eps
        ).pair_keys()
        if engine != "pointwise" and m == 1.0:
            oracle = run_family_join(
                points_p, points_q, "epsilon", engine="pointwise", eps=eps
            ).pair_keys()
            assert eps_keys == oracle
        prec, rec = precision_recall(eps_keys, rcj_keys)
        precisions.append(prec)
        recalls.append(rec)
    return multipliers, precisions, recalls, unit


def test_fig10_eps_resemblance(benchmark, scale, family_engine):
    outputs = benchmark.pedantic(
        lambda: {
            c: _sweep(c, scale.scale, family_engine) for c in ("SP", "LP")
        },
        rounds=1,
        iterations=1,
    )
    for combo, (multipliers, precisions, recalls, unit) in outputs.items():
        table = format_series(
            "eps/meanNN",
            multipliers,
            {
                "precision%": [f"{v:.1f}" for v in precisions],
                "recall%": [f"{v:.1f}" for v in recalls],
            },
            title=(
                f"Figure 10({combo}): eps-range join vs RCJ "
                f"(mean NN dist = {unit:.1f})"
            ),
        )
        emit(f"fig10_{combo}", table)
        # Shape: precision falls with eps, recall rises with eps.
        assert precisions[0] > precisions[-1]
        assert recalls[0] < recalls[-1]
        assert recalls[-1] > 90.0  # huge eps finds almost everything
        assert precisions[-1] < 30.0  # ...but drowns it in false pairs
        # No eps gives both high precision and high recall.
        assert not any(
            p > 90 and r > 90 for p, r in zip(precisions, recalls)
        )
        # The trends are monotone up to small noise.
        for a, b in zip(precisions, precisions[1:]):
            assert b <= a + 1.0
        for a, b in zip(recalls, recalls[1:]):
            assert b >= a - 1.0
