"""Calibration bench — the fitted planner must pick the measured winner.

Closes the loop ``BENCH_parallel.json`` opened: that artifact records a
1-core host where every parallel run *lost* to serial while the static
planner kept predicting otherwise.  This bench runs the whole
self-calibration cycle on the current host —

1. forced-engine seed sweep (:mod:`repro.calibration.sweep`) into a
   bench-private store,
2. least-squares refit into a persisted per-host profile,
3. fresh, larger datasets measured under every viable bulk-join engine,
4. ``choose_plan`` consulted with the profile loaded —

and asserts the calibrated decision agrees with the empirical ranking:
on a single-core host the planner must *never* pick ``array-parallel``
(the recorded mispick regime, now a regression test), and on any host
the picked engine's measured wall must be within tolerance of the
fastest.  A canned profile shaped like the recorded 1-core data pins
the decision deterministically, independent of this run's noise.

Results land in ``benchmarks/results/BENCH_calibration.json``.
"""

from __future__ import annotations

import os
import time

from repro.calibration.observations import reset_calibration
from repro.calibration.profile import (
    CalibrationProfile,
    EngineModel,
    host_fingerprint,
    save_profile,
)
from repro.calibration.refit import refit_profile
from repro.calibration.sweep import run_calibration_sweep
from repro.engine.planner import run_join
from repro.evaluation.scaling import write_json
from repro.parallel.costmodel import choose_plan

from benchmarks.conftest import RESULTS_DIR, emit

#: Paper-class sweep cardinality, divided by REPRO_SCALE — floored so
#: the verification datasets clear the pool's serial-fallback threshold
#: and the parallel plan is genuinely on the table.
SWEEP_PAPER_N = 100_000
MIN_SWEEP_N = 1600

#: Multicore tolerance: the calibrated pick's measured wall may trail
#: the empirical winner by this factor (scheduler noise at bench
#: scale); on one core the engine assertion is exact instead.
PICK_TOLERANCE = 1.3


def _measure_engines(points_p, points_q, worker_counts, min_shard):
    """Measured wall seconds of every viable bulk-join engine."""
    walls: dict[str, float] = {}
    report = run_join(points_p, points_q, engine="array")
    walls["array"] = report.cpu_seconds
    for workers in worker_counts:
        report = run_join(
            points_p,
            points_q,
            engine="array-parallel",
            workers=workers,
            min_shard=min_shard,
        )
        walls[f"array-parallel@{workers}"] = report.cpu_seconds
    return walls


def _recorded_1core_profile() -> CalibrationProfile:
    """A profile shaped like the recorded 1-core scaling data: the
    parallel lines dominate serial in base *and* slope at every worker
    count, as ``BENCH_parallel.json`` measured on the CI box."""
    host = dict(host_fingerprint())
    host["cpu_count"] = 1
    return CalibrationProfile(
        host=host,
        fitted_at="recorded",
        n_observations=12,
        models={
            "join/array": EngineModel(0.05, 2.0e-6, 4),
            "join/array-parallel@2": EngineModel(0.15, 4.5e-6, 4),
            "join/array-parallel@4": EngineModel(0.25, 5.0e-6, 4),
        },
    )


def test_costmodel_calibration(benchmark, scale, datasets, monkeypatch):
    calib_dir = os.path.join(RESULTS_DIR, "calibration-store")
    monkeypatch.setenv("REPRO_CALIBRATION_DIR", calib_dir)
    monkeypatch.delenv("REPRO_CALIBRATION", raising=False)
    reset_calibration()

    n = max(scale.synthetic_n(SWEEP_PAPER_N), MIN_SWEEP_N)
    cpus = os.cpu_count() or 1

    def cycle():
        recorded = run_calibration_sweep(
            n, rounds=2, include_topk=False, include_families=False
        )
        profile = refit_profile()
        path = save_profile(profile)
        return recorded, profile, path

    recorded, profile, profile_path = benchmark.pedantic(
        cycle, rounds=1, iterations=1
    )

    # Verification workload: fresh seed, twice the sweep's size, so the
    # planner extrapolates rather than memorizes.
    points_p, points_q = datasets.uniform_pair(2 * n, 2 * n, seed=97)
    worker_counts = [
        w for w in profile.parallel_worker_counts("join") if w <= cpus * 2
    ]
    min_shard = max(64, (2 * n) // 16)
    t0 = time.perf_counter()
    walls = _measure_engines(points_p, points_q, worker_counts, min_shard)
    measure_seconds = time.perf_counter() - t0

    plan = choose_plan(points_p, points_q, workers=max(worker_counts or [2]))
    fastest = min(walls, key=walls.get)
    picked = (
        plan.engine
        if plan.engine != "array-parallel"
        else f"array-parallel@{plan.workers}"
    )

    # The recorded-regime regression: a profile fitted on 1-core data
    # must steer every plan away from the pool, at every size.
    canned = _recorded_1core_profile()
    save_profile(canned, profile_path)
    canned_picks = {}
    for size in (n, 4 * n, 16 * n, 64 * n):
        fake_p, fake_q = datasets.uniform_pair(
            min(size, 4 * n), min(size, 4 * n), seed=3
        )
        canned_plan = choose_plan(
            _FakeBig(fake_p, size), _FakeBig(fake_q, size), workers=4
        )
        canned_picks[size] = canned_plan.engine
    save_profile(profile, profile_path)  # restore the fitted one

    predicted = (
        "-" if plan.predicted_seconds is None
        else f"{plan.predicted_seconds:.3f}s"
    )
    lines = [
        f"Calibrated planning (|P| = |Q| = {2 * n}, {cpus} cores)",
        f"  sweep: {recorded} observations, profile {profile_path}",
        f"  measured: "
        + ", ".join(f"{e}={s:.3f}s" for e, s in sorted(walls.items())),
        f"  calibrated pick: {picked} (predicted {predicted}), "
        f"empirical fastest: {fastest}",
        f"  recorded-1core regression picks: "
        + ", ".join(f"n={k}: {v}" for k, v in canned_picks.items()),
    ]
    emit("costmodel_calibration", "\n".join(lines))
    write_json(
        os.path.join(RESULTS_DIR, "BENCH_calibration.json"),
        {
            "host": profile.host,
            "cpu_count": cpus,
            "sweep_n": n,
            "observations": recorded,
            "measured_walls": {k: round(v, 4) for k, v in walls.items()},
            "calibrated_pick": picked,
            "predicted_seconds": plan.predicted_seconds,
            "empirical_fastest": fastest,
            "recorded_1core_picks": {
                str(k): v for k, v in canned_picks.items()
            },
            "measure_seconds": round(measure_seconds, 3),
        },
    )

    # The calibrated branch actually engaged.
    assert plan.predicted_seconds is not None, (
        "plan was made by static thresholds despite a fitted profile"
    )
    assert any("calibrated" in r for r in plan.reasons)

    # The pick agrees with the measurements.
    if cpus == 1:
        # The exact regression the observation log exists to fix: on
        # one core the pool can only lose, and the fitted planner must
        # know it.
        assert plan.engine != "array-parallel", (
            f"calibrated planner picked {picked} on a 1-core host "
            f"(measured: {walls})"
        )
        assert picked == fastest, (
            f"calibrated pick {picked} but {fastest} measured fastest "
            f"({walls})"
        )
    else:
        assert walls[picked] <= walls[fastest] * PICK_TOLERANCE, (
            f"calibrated pick {picked} ({walls[picked]:.3f}s) trails the "
            f"empirical winner {fastest} ({walls[fastest]:.3f}s) beyond "
            f"{PICK_TOLERANCE}x"
        )

    # The canned 1-core profile never yields a parallel plan.
    assert all(v != "array-parallel" for v in canned_picks.values()), (
        f"1-core-fitted profile still planned the pool: {canned_picks}"
    )


class _FakeBig:
    """Length-inflated view of a real pointset: the planner reads
    ``len()`` and a strided coordinate sample, so a small dataset can
    impersonate a paper-scale one without materializing it."""

    def __init__(self, points, n: int):
        self._points = list(points)
        self._n = max(n, len(self._points))

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        return self._points[index % len(self._points)]
