"""Figure 12 — resemblance of the kNN join to RCJ, vs k.

Paper's finding: same trade-off as Figures 10/11 — the kNN join's
parameter k cannot be tuned to reproduce the RCJ result, because RCJ
pairs are not defined by nearest-neighbour ranks (a far pair in a
sparse region joins while a near pair with a blocker does not).
"""

from repro.core.gabriel import gabriel_rcj
from repro.datasets.real import join_combination
from repro.engine.families import run_family_join
from repro.evaluation.report import format_series
from repro.evaluation.resemblance import precision_recall

from benchmarks.conftest import emit

K_MAX = 10  # the paper sweeps k in 1..10


def _sweep(combo: str, scale_factor: int, engine: str):
    points_q, points_p = join_combination(combo, scale=scale_factor)
    rcj_keys = {r.key() for r in gabriel_rcj(points_p, points_q)}
    precisions, recalls = [], []
    for k in range(1, K_MAX + 1):
        knn_keys = run_family_join(
            points_p, points_q, "knn", engine=engine, k=k
        ).pair_keys()
        if engine != "pointwise" and k == K_MAX:
            oracle = run_family_join(
                points_p, points_q, "knn", engine="pointwise", k=k
            ).pair_keys()
            assert knn_keys == oracle
        prec, rec = precision_recall(knn_keys, rcj_keys)
        precisions.append(prec)
        recalls.append(rec)
    return precisions, recalls


def test_fig12_knn_resemblance(benchmark, scale, family_engine):
    outputs = benchmark.pedantic(
        lambda: {
            c: _sweep(c, scale.scale, family_engine) for c in ("SP", "LP")
        },
        rounds=1,
        iterations=1,
    )
    for combo, (precisions, recalls) in outputs.items():
        table = format_series(
            "k",
            list(range(1, K_MAX + 1)),
            {
                "precision%": [f"{v:.1f}" for v in precisions],
                "recall%": [f"{v:.1f}" for v in recalls],
            },
            title=f"Figure 12({combo}): kNN join vs RCJ",
        )
        emit(f"fig12_{combo}", table)
        # Precision falls and recall rises with k; never both high.
        assert precisions[0] > precisions[-1]
        assert recalls[0] < recalls[-1]
        assert not any(
            p > 90 and r > 90 for p, r in zip(precisions, recalls)
        )
        for a, b in zip(precisions, precisions[1:]):
            assert b <= a + 1.0
        for a, b in zip(recalls, recalls[1:]):
            assert b >= a - 1.0
