"""Figure 18 — effect of the number of Gaussian clusters w.

Paper's findings: OBJ outperforms its competitors at every skew level
and is the least sensitive to the data distribution; the result
cardinality first grows with w and then stabilises as the data become
less skewed.
"""

from repro.bench.runner import build_workload, run_all_algorithms
from repro.datasets.synthetic import gaussian_clusters
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_N = 200_000
CLUSTER_COUNTS = (2, 5, 10, 15, 20)


def _run(n: int):
    results = {}
    for w in CLUSTER_COUNTS:
        points_q = gaussian_clusters(n, w=w, seed=180)
        points_p = gaussian_clusters(n, w=w, seed=181, start_oid=n)
        workload = build_workload(points_q, points_p)
        results[w] = run_all_algorithms(workload)
    return results


def test_fig18_clusters(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    results = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    rows = []
    for w, reports in results.items():
        for algo, report in reports.items():
            rows.append(
                [
                    w,
                    algo,
                    report.result_count,
                    f"{report.io_seconds:.2f}",
                    f"{report.modeled_cpu_seconds:.2f}",
                    f"{report.modeled_total_seconds:.2f}",
                ]
            )
    table = format_table(
        ["clusters", "algo", "results", "io(s)", "cpu(s)", "total(s)"],
        rows,
        title=f"Figure 18: Gaussian clusters w, |P|=|Q|={n}, std=1000",
    )
    emit("fig18_clusters", table)

    # OBJ wins at every skew level.
    for w, reports in results.items():
        totals = {
            a: reports[a].modeled_total_seconds for a in ("INJ", "BIJ", "OBJ")
        }
        assert totals["OBJ"] <= totals["BIJ"] * 1.05, w
        assert totals["OBJ"] < totals["INJ"], w

    # OBJ is the least sensitive to skew: its spread across w is the
    # smallest among the three algorithms.
    def spread(algo):
        totals = [results[w][algo].modeled_total_seconds for w in CLUSTER_COUNTS]
        return max(totals) / min(totals)

    assert spread("OBJ") <= spread("INJ")

    # Result cardinality grows from heavy skew and then stabilises.
    counts = [results[w]["OBJ"].result_count for w in CLUSTER_COUNTS]
    assert counts[0] < counts[-1]
    assert abs(counts[-1] - counts[-2]) < 0.15 * counts[-1]
