"""Scalability bench — the sharded parallel engine across worker counts.

Not a figure from the paper: this bench motivates the
:mod:`repro.parallel` subsystem by running the same self-join-style
workload (paper-class 50k–200k uniform points, scaled by
``REPRO_SCALE``; run with ``REPRO_BENCH_N=100000`` for the full-size
measurement) through the vectorized engine with 1, 2 and 4 worker
processes.

Assertions: every worker count returns the serial engine's *identical*
pair arrays (byte-for-byte — determinism is a correctness property
here, not a nicety), and — on machines with at least 4 physical cores
at full-size runs — 4 workers deliver at least a 2.5x strong-scaling
speedup.  Results are emitted both as the usual text table and as
``benchmarks/results/BENCH_parallel.json`` so CI archives the scaling
series.
"""

from __future__ import annotations

import os

import numpy as np

from repro.engine.arrays import PointArray
from repro.engine.kernels import rcj_pair_indices
from repro.evaluation.report import format_table
from repro.evaluation.scaling import (
    ScalePoint,
    scaling_summary,
    speedup_rows,
    write_json,
)
from repro.parallel.pool import parallel_rcj_pair_indices

from benchmarks.conftest import RESULTS_DIR, emit

#: Paper-style cardinalities, divided by REPRO_SCALE.
SIZES = (50_000, 100_000, 200_000)

WORKER_COUNTS = (1, 2, 4)

#: The acceptance floor: >= 2.5x at 4 workers...
MIN_SPEEDUP_AT_4 = 2.5

#: ...asserted only where it can physically hold: a full-size run on a
#: machine actually owning 4+ cores (scaled-down smoke runs measure
#: pool fixed costs, and a 1-core CI box cannot speed anything up).
ASSERT_ABOVE_N = 50_000


def _measure(datasets, sizes) -> tuple[list[ScalePoint], bool]:
    import time

    points: list[ScalePoint] = []
    identical = True
    for n in sizes:
        points_p, points_q = datasets.uniform_pair(n, n, seed=210)
        parr = PointArray.from_points(points_p)
        qarr = PointArray.from_points(points_q)
        ref_p, ref_q, _ = rcj_pair_indices(parr, qarr, exclude_same_oid=True)
        # Shard floor low enough that even scaled-down runs exercise a
        # real multi-shard pool rather than the in-process fallback.
        min_shard = max(64, n // 64)
        for workers in WORKER_COUNTS:
            t0 = time.perf_counter()
            p_idx, q_idx, _ = parallel_rcj_pair_indices(
                parr,
                qarr,
                workers=workers,
                exclude_same_oid=True,
                min_shard=min_shard,
            )
            wall = time.perf_counter() - t0
            identical &= bool(
                np.array_equal(ref_p, p_idx) and np.array_equal(ref_q, q_idx)
            )
            points.append(ScalePoint(n, workers, wall, int(len(p_idx))))
    return points, identical


def test_parallel_scaling(benchmark, scale, datasets):
    sizes = sorted({scale.synthetic_n(n) for n in SIZES})
    points, identical = benchmark.pedantic(
        lambda: _measure(datasets, sizes), rounds=1, iterations=1
    )
    cpus = os.cpu_count() or 1

    table = format_table(
        ["n", "workers", "pairs", "wall(s)", "speedup", "efficiency"],
        speedup_rows(points),
        title=(
            f"Parallel engine strong scaling (|P| = |Q| = n, self-join "
            f"mode, {cpus} cores)"
        ),
    )
    emit("parallel_scaling", table)
    write_json(
        os.path.join(RESULTS_DIR, "BENCH_parallel.json"),
        scaling_summary(points, cpus, identical),
    )

    # Identical result arrays at every worker count, always.
    assert identical, "parallel pair arrays diverged from the serial engine"

    # The speedup floor, only where it is physically meaningful.
    if cpus >= 4:
        for p in points:
            if p.workers == 4 and p.n >= ASSERT_ABOVE_N:
                base = next(
                    s.wall_seconds
                    for s in points
                    if s.n == p.n and s.workers == 1
                )
                speedup = base / max(p.wall_seconds, 1e-9)
                assert speedup >= MIN_SPEEDUP_AT_4, (
                    f"only {speedup:.2f}x at 4 workers for n={p.n} "
                    f"(floor {MIN_SPEEDUP_AT_4}x)"
                )
