"""Extension — I/O behaviour of the advanced INN-based queries.

Section 2.1 of the paper motivates incremental NN as a general spatial
ranking operator ("successfully extended to ... skyline retrieval and
reverse nearest neighbor search").  This bench measures how much of the
index each derived query actually touches: all of them must read a
small fraction of the tree, because their pruning rules (bisector
half-planes, dominance regions, aggregate MINDIST bounds) cut whole
subtrees.
"""

from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table
from repro.geometry.point import Point
from repro.queries import (
    aggregate_nearest,
    bichromatic_reverse_nearest,
    reverse_nearest,
    skyline,
)
from repro.rtree.bulk import bulk_load

from benchmarks.conftest import emit

PAPER_N = 200_000


def _run(n: int):
    points = uniform(n, seed=280)
    sites = uniform(max(n // 20, 4), seed=281, start_oid=10 * n)
    tree = bulk_load(points, name="T")
    site_tree = bulk_load(sites, name="S")
    total_pages = tree.disk.num_pages
    q = Point(5000.0, 5000.0)

    rows = []
    fractions = {}

    tree.reset_stats()
    rnn = reverse_nearest(tree, q)
    rows.append(["monochromatic RNN", len(rnn), tree.node_accesses, total_pages])
    fractions["rnn"] = tree.node_accesses / total_pages

    tree.reset_stats()
    site_tree.reset_stats()
    brnn = bichromatic_reverse_nearest(tree, site_tree, q)
    accesses = tree.node_accesses + site_tree.node_accesses
    rows.append(
        ["bichromatic RNN", len(brnn), accesses, total_pages + site_tree.disk.num_pages]
    )
    fractions["brnn"] = accesses / (total_pages + site_tree.disk.num_pages)

    tree.reset_stats()
    sky = skyline(tree)
    rows.append(["skyline (BBS)", len(sky), tree.node_accesses, total_pages])
    fractions["skyline"] = tree.node_accesses / total_pages

    tree.reset_stats()
    group = [Point(2000, 3000), Point(8000, 7000), Point(5000, 9000)]
    ann = aggregate_nearest(tree, group, agg="max", k=8)
    rows.append(["aggregate NN (max, k=8)", len(ann), tree.node_accesses, total_pages])
    fractions["ann"] = tree.node_accesses / total_pages

    return rows, fractions


def test_queries_io(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    rows, fractions = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    table = format_table(
        ["query", "results", "node accesses", "index pages"],
        rows,
        title=f"Extension: I/O of INN-derived queries, UI n={n}",
    )
    emit("queries_io", table)

    # Accesses stay in the order of the index size even though RNN
    # verification re-descends per candidate (repeat reads are buffer
    # hits in a deployment); the single-descent queries touch a small
    # fraction outright.  Fractions shrink further as n grows — the
    # pruned subtrees dominate at full scale.
    assert fractions["rnn"] < 1.0
    assert fractions["brnn"] < 2.0
    assert fractions["skyline"] < 0.5
    assert fractions["ann"] < 0.2
