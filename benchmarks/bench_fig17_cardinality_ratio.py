"""Figure 17 — effect of the cardinality ratio |P| : |Q|.

The sum |P| + |Q| is fixed (paper: 400K).  Findings: cost falls as |Q|
shrinks (fewer filter/verification rounds drive the outer loop); OBJ is
stable across ratios; the result cardinality peaks at the balanced 1:1
ratio.
"""

from repro.bench.runner import build_workload, run_all_algorithms
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_TOTAL = 400_000
RATIOS = ((1, 4), (1, 2), (1, 1), (2, 1), (4, 1))  # |P| : |Q|


def _run(total: int):
    results = {}
    for rp, rq in RATIOS:
        size_p = total * rp // (rp + rq)
        size_q = total - size_p
        points_q = uniform(size_q, seed=170)
        points_p = uniform(size_p, seed=171, start_oid=size_q)
        workload = build_workload(points_q, points_p)
        results[(rp, rq)] = run_all_algorithms(workload)
    return results


def test_fig17_cardinality_ratio(benchmark, scale):
    total = 2 * scale.synthetic_n(PAPER_TOTAL // 2)
    results = benchmark.pedantic(lambda: _run(total), rounds=1, iterations=1)
    rows = []
    for (rp, rq), reports in results.items():
        for algo, report in reports.items():
            rows.append(
                [
                    f"{rp}:{rq}",
                    algo,
                    report.result_count,
                    f"{report.io_seconds:.2f}",
                    f"{report.modeled_cpu_seconds:.2f}",
                    f"{report.modeled_total_seconds:.2f}",
                ]
            )
    table = format_table(
        ["|P|:|Q|", "algo", "results", "io(s)", "cpu(s)", "total(s)"],
        rows,
        title=f"Figure 17: cardinality ratio, |P|+|Q|={total}, UI data",
    )
    emit("fig17_cardinality_ratio", table)

    # Cost decreases as |Q| shrinks (left to right on the ratio axis).
    for algo in ("INJ", "BIJ", "OBJ"):
        first = results[RATIOS[0]][algo].modeled_total_seconds
        last = results[RATIOS[-1]][algo].modeled_total_seconds
        assert last < first, algo

    # OBJ beats INJ at every ratio (robustness).
    for ratio, reports in results.items():
        assert (
            reports["OBJ"].modeled_total_seconds
            < reports["INJ"].modeled_total_seconds
        ), ratio

    # Result cardinality is maximised at the balanced ratio.
    counts = {r: reports["OBJ"].result_count for r, reports in results.items()}
    assert counts[(1, 1)] == max(counts.values())
