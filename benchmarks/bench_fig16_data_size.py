"""Figure 16 — effect of data size n (time and result cardinality).

Paper's findings: all three algorithms scale well with n; the gap
between OBJ and its competitors widens as n grows; the RCJ result
cardinality grows linearly with n.
"""

from repro.bench.runner import build_workload, run_all_algorithms
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

#: The paper sweeps n in {50, 100, 200, 400, 800} thousand points.
PAPER_SIZES = (50_000, 100_000, 200_000, 400_000)


def _run(sizes):
    results = {}
    for n in sizes:
        points_q = uniform(n, seed=160)
        points_p = uniform(n, seed=161, start_oid=n)
        workload = build_workload(points_q, points_p)
        results[n] = run_all_algorithms(workload)
    return results


def test_fig16_data_size(benchmark, scale):
    sizes = [scale.synthetic_n(paper_n) for paper_n in PAPER_SIZES]
    results = benchmark.pedantic(lambda: _run(sizes), rounds=1, iterations=1)
    rows = []
    for n, reports in results.items():
        for algo, report in reports.items():
            rows.append(
                [
                    n,
                    algo,
                    report.result_count,
                    f"{report.io_seconds:.2f}",
                    f"{report.modeled_cpu_seconds:.2f}",
                    f"{report.modeled_total_seconds:.2f}",
                ]
            )
    table = format_table(
        ["n", "algo", "results", "io(s)", "cpu(s)", "total(s)"],
        rows,
        title="Figure 16: effect of data size n, UI data, |P|=|Q|=n",
    )
    emit("fig16_data_size", table)

    # (a) OBJ wins at every size, and its lead over INJ widens with n.
    gaps = []
    for n in sizes:
        totals = {
            a: results[n][a].modeled_total_seconds for a in ("INJ", "BIJ", "OBJ")
        }
        assert totals["OBJ"] <= totals["BIJ"] * 1.05, n
        assert totals["OBJ"] < totals["INJ"], n
        gaps.append(totals["INJ"] - totals["OBJ"])
    assert gaps[-1] > gaps[0]

    # (b) Result cardinality grows linearly with n: the per-point yield
    # is stable across a 8x size range.
    yields = [results[n]["OBJ"].result_count / n for n in sizes]
    assert max(yields) / min(yields) < 1.25
