"""Ablation — R*-tree vs k-d tree as the RCJ index.

Companion to the quadtree ablation: the *identical* OBJ implementation
runs over median-split k-d trees.  Results must be equal; the k-d
tree's binary fan-out under-fills branch pages, so it needs more pages
and more node accesses for the same join — quantifying the cost of the
index substitution the paper's generality remark allows.
"""

from repro.core.bij import bij
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table
from repro.kdtree import build_kdtree
from repro.rtree.bulk import bulk_load
from repro.storage.buffer import buffer_for_trees

from benchmarks.conftest import emit

PAPER_N = 100_000


def _run(n: int):
    points_q = uniform(n, seed=240)
    points_p = uniform(n, seed=241, start_oid=n)

    rtree_q = bulk_load(points_q, name="TQ")
    rtree_p = bulk_load(points_p, name="TP")
    buf_r = buffer_for_trees([rtree_q, rtree_p], 0.01)
    rtree_q.attach_buffer(buf_r)
    rtree_p.attach_buffer(buf_r)

    kd_q = build_kdtree(points_q, name="KQ")
    kd_p = build_kdtree(points_p, name="KP")
    buf_k = buffer_for_trees([kd_q, kd_p], 0.01)
    kd_q.attach_buffer(buf_k)
    kd_p.attach_buffer(buf_k)
    kd_q.reset_stats()
    kd_p.reset_stats()

    join_r = bij(rtree_q, rtree_p, symmetric=True)
    join_k = bij(kd_q, kd_p, symmetric=True)
    pages_r = rtree_q.disk.num_pages + rtree_p.disk.num_pages
    pages_k = kd_q.disk.num_pages + kd_p.disk.num_pages
    return join_r, join_k, pages_r, pages_k


def test_ablation_kdtree(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    join_r, join_k, pages_r, pages_k = benchmark.pedantic(
        lambda: _run(n), rounds=1, iterations=1
    )
    rows = [
        [
            "R*-tree (STR)",
            pages_r,
            join_r.result_count,
            join_r.candidate_count,
            join_r.node_accesses,
            f"{join_r.modeled_total_seconds:.2f}",
        ],
        [
            "k-d tree",
            pages_k,
            join_k.result_count,
            join_k.candidate_count,
            join_k.node_accesses,
            f"{join_k.modeled_total_seconds:.2f}",
        ],
    ]
    table = format_table(
        ["index", "pages", "results", "candidates", "node_acc", "total(s)"],
        rows,
        title=f"Ablation: OBJ over R*-tree vs k-d tree, UI |P|=|Q|={n}",
    )
    emit("ablation_kdtree", table)

    # The same algorithm over either index computes the same join.
    assert join_r.pair_keys() == join_k.pair_keys()
    # Binary fan-out costs pages: the k-d tree never needs fewer.
    assert pages_k >= pages_r
