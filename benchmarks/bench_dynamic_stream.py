"""Sustained moving-objects maintenance — batched vs per-event vs scratch.

The dynamic backends exist so a fleet-telemetry deployment can keep the
ring-constrained join current while positions stream in.  This bench
replays one fixed, seeded :class:`repro.workloads.moving.FleetSimulator`
event run through three maintenance strategies:

- ``event``     — the per-event oracle (``insert``/``delete`` one event
  at a time, dense columns recompacted per mutation);
- ``batch{B}``  — ``apply_batch`` over the same events grouped by
  :class:`~repro.workloads.moving.BatchAccumulator` (lazy tombstones +
  side buffer, at most one compaction/rebuild per side per batch);
- ``scratch``   — recompute the whole join from scratch at every
  batch-64 boundary (the no-maintenance baseline).

Correctness is asserted before anything is timed counts: the batched
replay must land on pair sets byte-identical to the per-event replay at
*every* batch boundary, for every batch size measured.

At the acceptance size (``REPRO_BENCH_N=20000`` resident points) the
batch-64 replay must sustain at least 5x the per-event updates/sec —
the PR's acceptance floor.  Archived as
``benchmarks/results/BENCH_dynamic_stream.json``.
"""

from __future__ import annotations

import os
import time

from repro.engine import run_join
from repro.engine.streaming import DynamicArrayRCJ
from repro.evaluation.report import format_table
from repro.evaluation.scaling import ScalePoint, scaling_summary, write_json
from repro.workloads.moving import BatchAccumulator, FleetSimulator

from benchmarks.conftest import RESULTS_DIR, emit

#: The acceptance-criterion configuration: 20k resident points
#: (10k vehicles x 10k depots), sustained update stream.
PAPER_N = 20_000

BATCH_SIZES = (64, 512)

#: The acceptance floor: batch-64 ``apply_batch`` sustains at least
#: this multiple of the per-event updates/sec...
MIN_SPEEDUP_AT_64 = 5.0

#: ...asserted only at the acceptance size (scaled-down smoke runs
#: mostly measure fixed per-batch overheads on both sides).
ASSERT_AT_N = 20_000

SEED = 77


def _materialize(n: int):
    """One seeded raw event run plus its per-batch-size groupings."""
    sim = FleetSimulator(fleet=n // 2, depots=max(n - n // 2, 1), seed=SEED)
    init_p, init_q = sim.initial_points()
    raw_events = max(256, min(2048, n // 8))
    raw = []
    for event in sim.events(ticks=1_000_000):
        raw.append(event)
        if len(raw) >= raw_events:
            break
    grouped = {}
    for size in BATCH_SIZES:
        acc = BatchAccumulator(size)
        batches = []
        for kind, point, side, t in raw:
            closed = acc.add(kind, point, side, t)
            if closed is not None:
                batches.append(closed)
        tail = acc.close()
        if tail is not None:
            batches.append(tail)
        grouped[size] = batches
    return init_p, init_q, raw, grouped


def _replay_event(init_p, init_q, raw, snapshot_at):
    """Per-event oracle replay; returns (wall, snapshots at raw-event
    boundaries, final backend)."""
    dyn = DynamicArrayRCJ(init_p, init_q)
    snapshots = {}
    wall = 0.0
    for i, (kind, point, side, _t) in enumerate(raw, start=1):
        t0 = time.perf_counter()
        if kind == "delete":
            dyn.delete(point, side)
        else:
            dyn.insert(point, side)
        wall += time.perf_counter() - t0
        if i in snapshot_at:
            snapshots[i] = dyn.pair_keys()
    snapshots[len(raw)] = dyn.pair_keys()
    return wall, snapshots, dyn


def _replay_batched(init_p, init_q, batches):
    """apply_batch replay; returns (wall, per-boundary snapshots keyed
    by cumulative raw-event count, per-batch latencies, final backend)."""
    dyn = DynamicArrayRCJ(init_p, init_q)
    snapshots = {}
    latencies = []
    done = 0
    for batch in batches:
        t0 = time.perf_counter()
        dyn.apply_batch(batch.inserts, batch.deletes)
        latencies.append(time.perf_counter() - t0)
        done += batch.events
        snapshots[done] = dyn.pair_keys()
    return sum(latencies), snapshots, latencies, dyn


def _replay_scratch(init_p, init_q, batches):
    """Recompute-from-scratch at every batch boundary."""
    cur_p = {p.oid: p for p in init_p}
    cur_q = {q.oid: q for q in init_q}
    wall = 0.0
    pairs = 0
    for batch in batches:
        for pt, side in batch.deletes:
            (cur_p if side == "P" else cur_q).pop(pt.oid)
        for pt, side in batch.inserts:
            (cur_p if side == "P" else cur_q)[pt.oid] = pt
        t0 = time.perf_counter()
        report = run_join(
            list(cur_p.values()), list(cur_q.values()), engine="array"
        )
        wall += time.perf_counter() - t0
        pairs = report.result_count
    return wall, pairs


def _run(n: int):
    init_p, init_q, raw, grouped = _materialize(n)
    events = len(raw)
    boundaries = set()
    for batches in grouped.values():
        done = 0
        for batch in batches:
            done += batch.events
            boundaries.add(done)

    wall_event, event_snaps, dyn_event = _replay_event(
        init_p, init_q, raw, boundaries
    )

    rows = []
    series = [
        ScalePoint(
            n, 1, wall_event, len(dyn_event.pair_keys()), mode="dyn-event"
        )
    ]
    rows.append(
        [
            "event",
            events,
            events,
            f"{wall_event:.3f}",
            f"{events / max(wall_event, 1e-9):.0f}",
            f"{wall_event / events * 1e3:.2f}",
            "1.0x",
        ]
    )

    speedups = {}
    for size in BATCH_SIZES:
        wall, snaps, latencies, dyn = _replay_batched(
            init_p, init_q, grouped[size]
        )
        for done, keys in snaps.items():
            assert keys == event_snaps[done], (
                f"batch={size} diverged from the per-event oracle at "
                f"raw-event boundary {done}"
            )
        speedups[size] = wall_event / max(wall, 1e-9)
        series.append(
            ScalePoint(n, 1, wall, len(dyn.pair_keys()), mode=f"dyn-batch{size}")
        )
        rows.append(
            [
                f"batch{size}",
                len(grouped[size]),
                events,
                f"{wall:.3f}",
                f"{events / max(wall, 1e-9):.0f}",
                f"{sum(latencies) / len(latencies) * 1e3:.2f}",
                f"{speedups[size]:.1f}x",
            ]
        )

    wall_scratch, scratch_pairs = _replay_scratch(
        init_p, init_q, grouped[BATCH_SIZES[0]]
    )
    series.append(ScalePoint(n, 1, wall_scratch, scratch_pairs, mode="dyn-scratch"))
    rows.append(
        [
            "scratch",
            len(grouped[BATCH_SIZES[0]]),
            events,
            f"{wall_scratch:.3f}",
            f"{events / max(wall_scratch, 1e-9):.0f}",
            f"{wall_scratch / len(grouped[BATCH_SIZES[0]]) * 1e3:.2f}",
            f"{wall_event / max(wall_scratch, 1e-9):.1f}x",
        ]
    )
    return rows, series, speedups


def test_dynamic_stream(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    rows, series, speedups = benchmark.pedantic(
        lambda: _run(n), rounds=1, iterations=1
    )
    table = format_table(
        [
            "mode",
            "batches",
            "events",
            "wall(s)",
            "updates/s",
            "batch lat(ms)",
            "vs event",
        ],
        rows,
        title=(
            f"Sustained moving-objects maintenance, {n} resident points "
            f"(fleet telemetry, seed {SEED})"
        ),
    )
    emit("dynamic_stream", table)
    write_json(
        os.path.join(RESULTS_DIR, "BENCH_dynamic_stream.json"),
        scaling_summary(
            series, os.cpu_count() or 1, True, benchmark="dynamic_stream"
        ),
    )

    # The acceptance floor, at the size the criterion names.
    if n >= ASSERT_AT_N:
        assert speedups[64] >= MIN_SPEEDUP_AT_64, (
            f"batch=64 only {speedups[64]:.1f}x over per-event "
            f"(floor {MIN_SPEEDUP_AT_64}x)"
        )
