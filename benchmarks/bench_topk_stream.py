"""Streamed top-k bench — ordered browsing vs full-join-then-sort.

Not a figure from the paper: this bench motivates the streaming engine
layer (:mod:`repro.engine.streaming`).  The tourist-recommendation
application wants the ``k`` smallest-diameter pairs; before PR 5 the
array engine could only materialize the whole join and sort it.  The
streamed route enumerates candidate pairs in expanding radius bands and
stops at the ``k``-th verified pair.

Assertions: the streamed prefix is byte-identical (canonical order key)
to the sorted full join for every measured ``k``, and — at full-size
runs (``REPRO_BENCH_N=20000``) — ``k=100`` beats full-join-then-sort by
at least 10x, the PR's acceptance floor.  The series is also archived
as ``benchmarks/results/BENCH_topk.json`` (``mode="topk"`` rows of the
standard scaling document).
"""

from __future__ import annotations

import os
import time

from repro.engine import run_join, run_topk
from repro.engine.streaming import pair_order_key, sort_pairs_by_diameter
from repro.evaluation.report import format_table
from repro.evaluation.scaling import ScalePoint, scaling_summary, write_json

from benchmarks.conftest import RESULTS_DIR, emit

#: The acceptance-criterion configuration: uniform 20k x 20k, k=100.
PAPER_N = 20_000

K_VALUES = (10, 100, 1000)

#: The acceptance floor for k=100 at full size...
MIN_SPEEDUP_AT_100 = 10.0

#: ...asserted only at the size the criterion names (scaled-down smoke
#: runs mostly measure fixed setup costs on both sides).
ASSERT_AT_N = 20_000


def _run(datasets, n: int):
    points_p, points_q = datasets.uniform_pair(n, n, seed=230)

    t0 = time.perf_counter()
    full = run_join(points_p, points_q, engine="array")
    ref = sort_pairs_by_diameter(full.pairs)
    t_full = time.perf_counter() - t0

    rows = []
    # One mode string per configuration: ScalePoint carries no k, and
    # same-mode rows would alias each other's workers=1 baseline.
    series = [ScalePoint(n, 1, t_full, len(ref), mode="join-full")]
    for k in K_VALUES:
        t0 = time.perf_counter()
        report = run_topk(points_p, points_q, k, engine="array")
        wall = time.perf_counter() - t0
        want = ref[: min(k, len(ref))]
        assert [pair_order_key(p) for p in report.pairs] == [
            pair_order_key(p) for p in want
        ], f"top-{k} prefix diverged from the sorted full join"
        series.append(
            ScalePoint(n, 1, wall, len(report.pairs), mode=f"topk-k{k}")
        )
        rows.append(
            [
                k,
                len(report.pairs),
                report.candidate_count,
                f"{wall:.3f}",
                f"{t_full:.3f}",
                f"{t_full / max(wall, 1e-9):.1f}x",
            ]
        )
    return rows, series, t_full


def test_topk_streaming(benchmark, scale, datasets):
    n = scale.synthetic_n(PAPER_N)
    rows, series, _t_full = benchmark.pedantic(
        lambda: _run(datasets, n), rounds=1, iterations=1
    )
    table = format_table(
        ["k", "pairs", "candidates", "topk wall(s)", "full+sort(s)", "speedup"],
        rows,
        title=f"Streamed top-k vs full-join-then-sort, uniform |P|=|Q|={n}",
    )
    emit("topk_stream", table)
    write_json(
        os.path.join(RESULTS_DIR, "BENCH_topk.json"),
        scaling_summary(
            series, os.cpu_count() or 1, True, benchmark="topk_streaming"
        ),
    )

    # Laziness shape: work grows with k (candidates are monotone).
    cands = [r[2] for r in rows]
    assert cands == sorted(cands)

    # The acceptance floor, at the size the criterion names.
    if n >= ASSERT_AT_N:
        for r in rows:
            if r[0] == 100:
                speedup = float(r[5].rstrip("x"))
                assert speedup >= MIN_SPEEDUP_AT_100, (
                    f"k=100 only {speedup:.1f}x over full-join-then-sort "
                    f"(floor {MIN_SPEEDUP_AT_100}x)"
                )
