"""Figure 14 — cost of the verification step, uniform data.

Paper's finding: because the filter step is so selective, verification
accounts for a small fraction of total cost (< ~25 %): the bars with
and without the verification step are close.
"""

from repro.bench.runner import build_workload, run_algorithm
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table

from benchmarks.conftest import REPORT_HEADERS, emit, report_row

PAPER_N = 200_000  # |P| = |Q| in the paper's Figure 14


def _run(n: int):
    points_q = uniform(n, seed=140)
    points_p = uniform(n, seed=141, start_oid=n)
    workload = build_workload(points_q, points_p)
    out = {}
    for algo in ("INJ", "BIJ", "OBJ"):
        out[(algo, True)] = run_algorithm(workload, algo, verify=True)
        out[(algo, False)] = run_algorithm(workload, algo, verify=False)
    return out


def test_fig14_verification_cost(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    results = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    rows = []
    for (algo, verified), report in sorted(results.items()):
        label = "with" if verified else "without"
        rows.append([label] + report_row(report))
    table = format_table(
        ["verification"] + REPORT_HEADERS,
        rows,
        title=f"Figure 14: cost with/without verification, UI |P|=|Q|={n}",
    )
    emit("fig14_verification_cost", table)

    for algo in ("INJ", "BIJ", "OBJ"):
        with_v = results[(algo, True)]
        without_v = results[(algo, False)]
        # Verification can only cost extra work...
        assert with_v.node_accesses >= without_v.node_accesses
        # ...but that extra is a minor fraction of the total (the
        # paper: "less than 25% of the total cost").
        extra = (
            with_v.modeled_total_seconds - without_v.modeled_total_seconds
        )
        assert extra <= 0.30 * with_v.modeled_total_seconds, algo
        # Without verification every candidate is reported.
        assert without_v.result_count == without_v.candidate_count
