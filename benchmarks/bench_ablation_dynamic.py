"""Ablation — incremental RCJ maintenance vs per-update recomputation.

Extension experiment for the dynamic decision-support setting: a stream
of insertions and deletions is applied to both datasets, and the
maintained result (:class:`repro.core.dynamic.DynamicRCJ`) is compared
against recomputing the join from scratch after every update (with the
fast main-memory Gabriel comparator — an *optimistic* baseline; the
R-tree algorithms would be slower still).  The maintained view must be
exact and the per-update cost dramatically lower.
"""

import random
import time

from repro.core.dynamic import DynamicRCJ
from repro.core.gabriel import gabriel_rcj
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_N = 50_000
UPDATES = 60


def _run(n: int):
    ps = uniform(n, seed=270)
    qs = uniform(n, seed=271, start_oid=10 * n)
    rng = random.Random(272)

    dyn = DynamicRCJ(ps, qs)

    # Pre-plan the update stream so both strategies replay it exactly.
    ops = []
    next_oid = 10 * n * 2
    sim_ps, sim_qs = list(ps), list(qs)
    for _ in range(UPDATES):
        r = rng.random()
        if r < 0.5:
            from repro.geometry.point import Point

            pt = Point(rng.uniform(0, 10000), rng.uniform(0, 10000), next_oid)
            next_oid += 1
            side = "P" if rng.random() < 0.5 else "Q"
            (sim_ps if side == "P" else sim_qs).append(pt)
            ops.append(("insert", pt, side))
        else:
            side = "P" if rng.random() < 0.5 else "Q"
            pool = sim_ps if side == "P" else sim_qs
            victim = rng.choice(pool)
            pool.remove(victim)
            ops.append(("delete", victim, side))

    t0 = time.perf_counter()
    for kind, pt, side in ops:
        if kind == "insert":
            dyn.insert(pt, side)
        else:
            dyn.delete(pt, side)
    dynamic_seconds = time.perf_counter() - t0

    # Recompute baseline (same stream, from-scratch after each update).
    base_ps, base_qs = list(ps), list(qs)
    t0 = time.perf_counter()
    final_keys = set()
    for kind, pt, side in ops:
        pool = base_ps if side == "P" else base_qs
        if kind == "insert":
            pool.append(pt)
        else:
            pool.remove(pt)
        final_keys = {r.key() for r in gabriel_rcj(base_ps, base_qs)}
    recompute_seconds = time.perf_counter() - t0

    return dyn, final_keys, dynamic_seconds, recompute_seconds


def test_ablation_dynamic(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    dyn, final_keys, dyn_s, rec_s = benchmark.pedantic(
        lambda: _run(n), rounds=1, iterations=1
    )
    rows = [
        ["incremental (DynamicRCJ)", UPDATES, f"{dyn_s:.3f}", f"{dyn_s / UPDATES * 1000:.2f}"],
        ["recompute (Gabriel)", UPDATES, f"{rec_s:.3f}", f"{rec_s / UPDATES * 1000:.2f}"],
    ]
    table = format_table(
        ["strategy", "updates", "total(s)", "per-update(ms)"],
        rows,
        title=f"Ablation: dynamic maintenance vs recompute, UI |P|=|Q|={n}",
    )
    emit("ablation_dynamic", table)

    # Exactness: the maintained view equals the final recomputation.
    assert dyn.pair_keys() == final_keys
    # Locality: incremental updates beat from-scratch recomputation.
    # At the default reduced scale the pure-Python update path races a
    # C-optimised O(n) recompute, so allow slack; the gap widens with n
    # (per-update work is local, recomputation is linear).
    assert dyn_s < rec_s * 1.2
