"""Ablation — R*-tree vs point quadtree as the RCJ index.

The paper claims its methodology applies to "other hierarchical spatial
indexes (e.g., point quad-tree)".  This ablation runs the *identical*
OBJ implementation over both index types and compares results (must be
equal) and costs (R*-trees pack pages better; quadtree shapes follow
the data distribution).
"""

from repro.core.bij import bij
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table
from repro.quadtree.tree import QuadTree
from repro.rtree.bulk import bulk_load
from repro.storage.buffer import buffer_for_trees

from benchmarks.conftest import emit

PAPER_N = 100_000


def _run(n: int):
    points_q = uniform(n, seed=230)
    points_p = uniform(n, seed=231, start_oid=n)

    rtree_q = bulk_load(points_q, name="TQ")
    rtree_p = bulk_load(points_p, name="TP")
    buf_r = buffer_for_trees([rtree_q, rtree_p], 0.01)
    rtree_q.attach_buffer(buf_r)
    rtree_p.attach_buffer(buf_r)

    quad_q = QuadTree(name="QQ")
    quad_p = QuadTree(name="QP")
    for p in points_q:
        quad_q.insert(p)
    for p in points_p:
        quad_p.insert(p)
    buf_q = buffer_for_trees([quad_q, quad_p], 0.01)
    quad_q.attach_buffer(buf_q)
    quad_p.attach_buffer(buf_q)
    quad_q.reset_stats()
    quad_p.reset_stats()

    join_r = bij(rtree_q, rtree_p, symmetric=True)
    join_q = bij(quad_q, quad_p, symmetric=True)
    pages_r = rtree_q.disk.num_pages + rtree_p.disk.num_pages
    pages_q = quad_q.disk.num_pages + quad_p.disk.num_pages
    return join_r, join_q, pages_r, pages_q


def test_ablation_quadtree(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    join_r, join_q, pages_r, pages_q = benchmark.pedantic(
        lambda: _run(n), rounds=1, iterations=1
    )
    rows = [
        [
            "R*-tree (STR)",
            pages_r,
            join_r.result_count,
            join_r.candidate_count,
            join_r.node_accesses,
            f"{join_r.modeled_total_seconds:.2f}",
        ],
        [
            "point quadtree",
            pages_q,
            join_q.result_count,
            join_q.candidate_count,
            join_q.node_accesses,
            f"{join_q.modeled_total_seconds:.2f}",
        ],
    ]
    table = format_table(
        ["index", "pages", "results", "candidates", "node_acc", "total(s)"],
        rows,
        title=f"Ablation: OBJ over R*-tree vs point quadtree, UI |P|=|Q|={n}",
    )
    emit("ablation_quadtree", table)

    # The same algorithm over either index computes the same join.
    assert join_r.pair_keys() == join_q.pair_keys()
    # STR-packed R-tree pages are at least as dense as quadtree pages.
    assert pages_r <= pages_q
