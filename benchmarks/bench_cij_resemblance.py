"""Extension — resemblance of the common influence join (ref [19]) to RCJ.

The paper names CIJ as the only other parameterless spatial join on
pointsets and asserts that its result "cannot be exploited to determine
RCJ results effectively".  This bench quantifies that: CIJ recall of
RCJ is (near-)total — an empty ring's centre witnesses the cell
intersection, so RCJ ⊆ CIJ in general position — but its precision is
far from 100%, i.e. CIJ is a strict superset that cannot stand in for
RCJ, and no parameter exists to tighten it.
"""

from repro.core.gabriel import gabriel_rcj
from repro.datasets.real import join_combination
from repro.evaluation.report import format_table
from repro.evaluation.resemblance import precision_recall
from repro.geometry.rect import Rect
from repro.joins.common_influence import common_influence_join

from benchmarks.conftest import emit

#: CIJ's all-pairs cell machinery is heavier than the R-tree joins;
#: shrink the workload by this extra factor relative to REPRO_SCALE.
_EXTRA_SHRINK = 4


def _measure(combo: str, scale_factor: int):
    points_q, points_p = join_combination(
        combo, scale=scale_factor * _EXTRA_SHRINK
    )
    rcj_keys = {r.key() for r in gabriel_rcj(points_p, points_q)}
    cij_pairs = common_influence_join(
        points_p, points_q, bounds=Rect(0, 0, 10000, 10000)
    )
    cij_keys = {(p.oid, q.oid) for p, q in cij_pairs}
    prec, rec = precision_recall(cij_keys, rcj_keys)
    return len(rcj_keys), len(cij_keys), prec, rec


def test_cij_resemblance(benchmark, scale):
    outputs = benchmark.pedantic(
        lambda: {c: _measure(c, scale.scale) for c in ("SP", "LP")},
        rounds=1,
        iterations=1,
    )
    rows = [
        [combo, rcj_n, cij_n, f"{prec:.1f}", f"{rec:.1f}"]
        for combo, (rcj_n, cij_n, prec, rec) in outputs.items()
    ]
    table = format_table(
        ["combo", "|RCJ|", "|CIJ|", "precision%", "recall%"],
        rows,
        title="Extension: common influence join vs RCJ (paper ref [19])",
    )
    emit("cij_resemblance", table)

    for _combo, (rcj_n, cij_n, prec, rec) in outputs.items():
        # RCJ ⊆ CIJ in general position: recall is (near-)total.
        assert rec > 99.0
        # ...but CIJ is a strict superset with weak precision: it
        # cannot stand in for RCJ ("cannot be exploited ... effectively").
        assert cij_n > rcj_n
        assert prec < 80.0
