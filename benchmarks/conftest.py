"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper's Section 5 at
a reduced scale (``REPRO_SCALE``, default 64; see DESIGN.md §5), writes
the paper-style rows to ``benchmarks/results/<id>.txt`` and asserts the
qualitative shape the paper reports.

Reported time columns follow the paper's accounting:

- ``io(s)``  — page faults x 10 ms at the shared LRU buffer;
- ``cpu(s)`` — node accesses x 0.05 ms (the paper: CPU time "roughly
  models the total number ... of R-tree node accesses");
- ``wall(s)`` — measured Python wall-clock, shown for transparency but
  not used in shape assertions (host constant factors differ from the
  paper's C++).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import BenchScale
from repro.datasets import fixtures as dataset_fixtures

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

FAMILY_ENGINES = ("pointwise", "array", "array-parallel", "auto")


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        choices=FAMILY_ENGINES,
        default=None,
        help=(
            "Execution engine for the join-family sweeps (fig10-12): the"
            " pointwise reference oracles or the vectorized operator"
            " pipelines.  Defaults to $REPRO_FAMILY_ENGINE, else 'array'."
        ),
    )


@pytest.fixture(scope="session")
def family_engine(request) -> str:
    """Engine the resemblance sweeps run their join families on."""
    opt = request.config.getoption("--engine")
    if opt is None:
        opt = os.environ.get("REPRO_FAMILY_ENGINE", "array")
    if opt not in FAMILY_ENGINES:
        raise pytest.UsageError(
            f"REPRO_FAMILY_ENGINE={opt!r} not in {FAMILY_ENGINES}"
        )
    return opt


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")
    print(f"\n{text}")


def report_row(report) -> list:
    """The standard per-algorithm columns used across benches."""
    return [
        report.algorithm,
        report.result_count,
        report.candidate_count,
        report.node_accesses,
        report.page_faults,
        f"{report.io_seconds:.2f}",
        f"{report.modeled_cpu_seconds:.2f}",
        f"{report.modeled_total_seconds:.2f}",
        f"{report.cpu_seconds:.2f}",
    ]


REPORT_HEADERS = [
    "algo",
    "results",
    "candidates",
    "node_acc",
    "faults",
    "io(s)",
    "cpu(s)",
    "total(s)",
    "wall(s)",
]


@pytest.fixture(scope="session", autouse=True)
def _hermetic_calibration(tmp_path_factory):
    """Session-private calibration store, as in the test suite's
    conftest: benches must neither pollute ``~/.cache`` nor have their
    planner assertions depend on the machine's calibration history."""
    path = str(tmp_path_factory.mktemp("calibration"))
    old = os.environ.get("REPRO_CALIBRATION_DIR")
    os.environ["REPRO_CALIBRATION_DIR"] = path
    yield
    if old is None:
        os.environ.pop("REPRO_CALIBRATION_DIR", None)
    else:
        os.environ["REPRO_CALIBRATION_DIR"] = old


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """Session-wide scaling configuration."""
    return BenchScale()


@pytest.fixture(scope="session")
def datasets() -> "type[dataset_fixtures]":
    """The seeded dataset builders shared with the test suite
    (:mod:`repro.datasets.fixtures`): ``uniform_pair``,
    ``clustered_pair``, degenerate families, ``equivalence_families``.
    """
    return dataset_fixtures
