"""Figure 13 — execution time by join combination, real-data stand-ins.

Paper's findings: BIJ beats INJ (bulk computation slashes node
accesses); OBJ beats both and is robust across combinations; a
combination with a smaller outer tree TQ is cheaper than its primed
counterpart (LP faster than LP').
"""

from repro.bench.runner import build_workload, run_all_algorithms
from repro.datasets.real import join_combination
from repro.evaluation.report import format_table

from benchmarks.conftest import REPORT_HEADERS, emit, report_row

COMBINATIONS = ("SP", "LP", "SP'", "LP'")


def _run(scale_factor: int):
    results = {}
    for combo in COMBINATIONS:
        points_q, points_p = join_combination(combo, scale=scale_factor)
        workload = build_workload(points_q, points_p)
        results[combo] = run_all_algorithms(workload)
    return results


def test_fig13_join_combinations(benchmark, scale):
    results = benchmark.pedantic(
        lambda: _run(scale.scale), rounds=1, iterations=1
    )
    rows = []
    for combo, reports in results.items():
        for name, report in reports.items():
            rows.append([combo] + report_row(report))
    table = format_table(
        ["combo"] + REPORT_HEADERS,
        rows,
        title="Figure 13: cost by join combination (io = faults x 10ms, "
        "cpu = node accesses x 0.05ms)",
    )
    emit("fig13_join_combinations", table)

    for combo, reports in results.items():
        # All algorithms compute the same join.
        assert (
            reports["INJ"].pair_keys()
            == reports["BIJ"].pair_keys()
            == reports["OBJ"].pair_keys()
        ), combo
        # Bulk computation beats per-point traversal; OBJ never loses.
        total = {n: r.modeled_total_seconds for n, r in reports.items()}
        assert total["BIJ"] < total["INJ"], combo
        assert total["OBJ"] <= total["BIJ"] * 1.05, combo
        assert total["OBJ"] < total["INJ"], combo

    # Smaller outer tree is cheaper: LP (Q = LO, the smaller set)
    # beats LP' (Q = PP) for the best algorithm.
    assert (
        results["LP"]["OBJ"].modeled_total_seconds
        < results["LP'"]["OBJ"].modeled_total_seconds
    )
