"""Ablation — STR vs Hilbert bulk loading vs R* insertion as the build.

Not a paper experiment: it validates that the benchmark suite's choice
of STR bulk loading (fast builds, well-packed pages) does not change
the join result and compares build cost and page counts against
one-by-one R* insertion (the paper's R*-trees).
"""

import time

from repro.core.bij import bij
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table
from repro.rtree.bulk import bulk_load, hilbert_bulk_load
from repro.rtree.tree import RTree
from repro.storage.buffer import buffer_for_trees

from benchmarks.conftest import emit

PAPER_N = 100_000  # build ablation needs less scale than the joins


def _build_both(points, name):
    t0 = time.perf_counter()
    bulk_tree = bulk_load(points, name=f"{name}-str")
    bulk_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    hilbert_tree = hilbert_bulk_load(points, name=f"{name}-hil")
    hilbert_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    rstar_tree = RTree(name=f"{name}-r*")
    for p in points:
        rstar_tree.insert(p)
    rstar_time = time.perf_counter() - t0
    return (bulk_tree, bulk_time), (hilbert_tree, hilbert_time), (rstar_tree, rstar_time)


def _run(n: int):
    points_q = uniform(n, seed=210)
    points_p = uniform(n, seed=211, start_oid=n)
    (bulk_q, t_bulk_q), (hil_q, t_hil_q), (rstar_q, t_rstar_q) = _build_both(
        points_q, "TQ"
    )
    (bulk_p, t_bulk_p), (hil_p, t_hil_p), (rstar_p, t_rstar_p) = _build_both(
        points_p, "TP"
    )

    out = {}
    for name, tq, tp, t_build in (
        ("STR bulk", bulk_q, bulk_p, t_bulk_q + t_bulk_p),
        ("Hilbert bulk", hil_q, hil_p, t_hil_q + t_hil_p),
        ("R* insert", rstar_q, rstar_p, t_rstar_q + t_rstar_p),
    ):
        buf = buffer_for_trees([tq, tp], 0.01)
        tq.attach_buffer(buf)
        tp.attach_buffer(buf)
        out[name] = (t_build, tq, tp, bij(tq, tp, symmetric=True))
    return out


def test_ablation_build(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    results = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    rows = []
    for name, (build_time, tree_q, tree_p, join) in results.items():
        rows.append(
            [
                name,
                f"{build_time:.2f}",
                tree_q.disk.num_pages + tree_p.disk.num_pages,
                join.result_count,
                f"{join.modeled_total_seconds:.2f}",
            ]
        )
    table = format_table(
        ["build", "build wall(s)", "pages", "results", "OBJ total(s)"],
        rows,
        title=f"Ablation: index build method, UI |P|=|Q|={n}",
    )
    emit("ablation_build", table)

    bulk = results["STR bulk"]
    hilbert = results["Hilbert bulk"]
    rstar = results["R* insert"]
    # The join result is independent of how the index was built.
    assert bulk[3].pair_keys() == rstar[3].pair_keys() == hilbert[3].pair_keys()
    # Both bulk loaders build faster than one-by-one R* insertion and
    # pack pages at least as tightly.
    assert bulk[0] < rstar[0]
    assert hilbert[0] < rstar[0]
    rstar_pages = rstar[1].disk.num_pages + rstar[2].disk.num_pages
    for packed in (bulk, hilbert):
        pages = packed[1].disk.num_pages + packed[2].disk.num_pages
        assert pages <= rstar_pages
