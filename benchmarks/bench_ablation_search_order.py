"""Ablation — depth-first vs random search order (paper, Section 3.4).

The paper argues that visiting TQ's leaves depth-first preserves data
access locality, so a small buffer absorbs most page requests; a random
leaf order destroys locality and inflates I/O.  This ablation measures
exactly that claim.
"""

from repro.bench.runner import build_workload
from repro.core.inj import inj
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_N = 200_000


def _run(n: int):
    points_q = uniform(n, seed=190)
    points_p = uniform(n, seed=191, start_oid=n)
    # The locality effect needs a buffer that can hold a per-point
    # working set; at reduced scale that means a larger fraction than
    # the paper's 1 % of full-size trees (see EXPERIMENTS.md).
    workload = build_workload(points_q, points_p, buffer_fraction=0.4)
    out = {}
    for order in ("depth_first", "random"):
        workload.reset()
        out[order] = inj(
            workload.tree_q, workload.tree_p, search_order=order, seed=7
        )
    return out


def test_ablation_search_order(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    results = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    rows = [
        [
            order,
            report.page_faults,
            report.buffer_hits,
            f"{100 * report.buffer_hits / max(1, report.buffer_hits + report.page_faults):.1f}%",
            f"{report.io_seconds:.2f}",
        ]
        for order, report in results.items()
    ]
    table = format_table(
        ["search order", "faults", "hits", "hit ratio", "io(s)"],
        rows,
        title=f"Ablation (Sec. 3.4): INJ leaf visit order, UI |P|=|Q|={n}, buffer 5%",
    )
    emit("ablation_search_order", table)

    # Same answer either way...
    assert results["depth_first"].pair_keys() == results["random"].pair_keys()
    # ...but depth-first order exploits locality.
    assert results["depth_first"].page_faults < results["random"].page_faults
