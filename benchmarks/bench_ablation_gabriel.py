"""Ablation — R-tree OBJ vs the main-memory Gabriel/Delaunay algorithm.

Not a paper experiment: it quantifies what the disk-oriented design
buys and costs.  The Delaunay route wins on raw wall-clock when the
data fit in RAM (vectorised scipy), while OBJ provides the paper's
I/O-bounded execution over indexed, page-resident data — and both must
produce identical results.
"""

import time

from repro.bench.runner import build_workload, run_algorithm
from repro.core.gabriel import gabriel_rcj
from repro.datasets.synthetic import uniform
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_N = 200_000


def _run(n: int):
    points_q = uniform(n, seed=200)
    points_p = uniform(n, seed=201, start_oid=n)
    workload = build_workload(points_q, points_p)
    obj_report = run_algorithm(workload, "OBJ")

    t0 = time.perf_counter()
    gabriel_pairs = gabriel_rcj(points_p, points_q)
    gabriel_wall = time.perf_counter() - t0
    return obj_report, gabriel_pairs, gabriel_wall


def test_ablation_gabriel(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    obj_report, gabriel_pairs, gabriel_wall = benchmark.pedantic(
        lambda: _run(n), rounds=1, iterations=1
    )
    rows = [
        [
            "OBJ (R-tree)",
            obj_report.result_count,
            f"{obj_report.cpu_seconds:.2f}",
            obj_report.page_faults,
            f"{obj_report.io_seconds:.2f}",
        ],
        [
            "Gabriel (Delaunay)",
            len(gabriel_pairs),
            f"{gabriel_wall:.2f}",
            0,
            "n/a (main memory)",
        ],
    ]
    table = format_table(
        ["algorithm", "results", "wall(s)", "faults", "io(s)"],
        rows,
        title=f"Ablation: disk-based OBJ vs main-memory Gabriel, UI |P|=|Q|={n}",
    )
    emit("ablation_gabriel", table)

    # Identical result sets.
    assert {p.key() for p in gabriel_pairs} == obj_report.pair_keys()
    # In-memory Delaunay is the wall-clock winner when data fit in RAM.
    assert gabriel_wall < obj_report.cpu_seconds
