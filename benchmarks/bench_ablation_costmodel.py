"""Ablation — analytical node-access models vs measurement.

The paper's future work: "devise accurate I/O cost models for our
proposed algorithms".  This bench runs INJ and BIJ over uniform data at
several sizes and compares measured logical node accesses with the
first-order models of :mod:`repro.evaluation.analysis`, asserting the
factor-3 accuracy class the models document.
"""

from repro.bench.runner import build_workload, run_algorithm
from repro.datasets.synthetic import uniform
from repro.evaluation.analysis import (
    estimate_bij_node_accesses,
    estimate_inj_node_accesses,
    speedup_bij_over_inj,
)
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_SIZES = [50_000, 100_000, 200_000]


def _run(sizes: list[int]):
    rows = []
    checks = []
    for n in sizes:
        points_q = uniform(n, seed=260)
        points_p = uniform(n, seed=261, start_oid=n)
        workload = build_workload(points_q, points_p)
        inj_report = run_algorithm(workload, "INJ")
        bij_report = run_algorithm(workload, "BIJ")
        leaf_cap = workload.tree_p.leaf_capacity
        branch_cap = workload.tree_p.branch_capacity
        inj_model = estimate_inj_node_accesses(n, n, leaf_cap, branch_cap)
        bij_model = estimate_bij_node_accesses(n, n, leaf_cap, branch_cap)
        rows.append(
            [
                n,
                inj_report.node_accesses,
                f"{inj_model:.0f}",
                bij_report.node_accesses,
                f"{bij_model:.0f}",
                f"{speedup_bij_over_inj(n, n, leaf_cap, branch_cap):.1f}",
            ]
        )
        checks.append(
            (inj_report.node_accesses, inj_model, bij_report.node_accesses, bij_model)
        )
    return rows, checks


def test_ablation_costmodel(benchmark, scale):
    sizes = [scale.synthetic_n(n) for n in PAPER_SIZES]
    rows, checks = benchmark.pedantic(
        lambda: _run(sizes), rounds=1, iterations=1
    )
    table = format_table(
        ["n", "INJ measured", "INJ model", "BIJ measured", "BIJ model", "speedup model"],
        rows,
        title="Ablation: node-access cost models vs measurement, UI data",
    )
    emit("ablation_costmodel", table)

    for inj_meas, inj_model, bij_meas, bij_model in checks:
        assert inj_model / 3 <= inj_meas <= inj_model * 3
        assert bij_model / 3 <= bij_meas <= bij_model * 3
        # The models reproduce the paper's qualitative finding: bulk
        # computation reduces node accesses.
        assert bij_meas < inj_meas
