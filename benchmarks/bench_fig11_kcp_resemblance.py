"""Figure 11 — resemblance of the k-closest-pairs join to RCJ, vs k.

Paper's finding: the trend follows Figure 10 — growing k trades
precision for recall and no k matches the RCJ result.  (Note RCJ pairs
are *not* the globally closest pairs: pairs in sparse regions have
large circles yet join, so even k = |RCJ| misses many.)
"""

from repro.core.gabriel import gabriel_rcj
from repro.datasets.real import join_combination
from repro.engine.families import run_family_join
from repro.evaluation.report import format_series
from repro.evaluation.resemblance import precision_recall

from benchmarks.conftest import emit


def _sweep(combo: str, scale_factor: int, engine: str):
    points_q, points_p = join_combination(combo, scale=scale_factor)
    rcj_keys = {r.key() for r in gabriel_rcj(points_p, points_q)}
    n_result = len(rcj_keys)
    # k as fractions of the RCJ result size (the paper sweeps k up to
    # the order of the result cardinality).
    fractions = [0.1, 0.25, 0.5, 1.0, 1.5, 2.0]
    k_values = [max(1, int(n_result * f)) for f in fractions]
    k_max = max(k_values)

    # One k_max run covers the whole sweep: the result is canonically
    # ordered by (distance, p.oid, q.oid), so the answer for any
    # smaller k is its prefix.
    report = run_family_join(
        points_p, points_q, "kcp", engine=engine, k=k_max
    )
    pairs_in_order = [pair.key() for pair in report.pairs]
    if engine != "pointwise":
        oracle = run_family_join(
            points_p, points_q, "kcp", engine="pointwise", k=k_max
        )
        assert pairs_in_order == [pair.key() for pair in oracle.pairs]

    precisions, recalls = [], []
    for k in k_values:
        kcp_keys = set(pairs_in_order[:k])
        prec, rec = precision_recall(kcp_keys, rcj_keys)
        precisions.append(prec)
        recalls.append(rec)
    return fractions, k_values, precisions, recalls


def test_fig11_kcp_resemblance(benchmark, scale, family_engine):
    outputs = benchmark.pedantic(
        lambda: {
            c: _sweep(c, scale.scale, family_engine) for c in ("SP", "LP")
        },
        rounds=1,
        iterations=1,
    )
    for combo, (fractions, k_values, precisions, recalls) in outputs.items():
        table = format_series(
            "k/|RCJ|",
            [f"{f} (k={k})" for f, k in zip(fractions, k_values)],
            {
                "precision%": [f"{v:.1f}" for v in precisions],
                "recall%": [f"{v:.1f}" for v in recalls],
            },
            title=f"Figure 11({combo}): k-closest-pairs vs RCJ",
        )
        emit(f"fig11_{combo}", table)
        # Recall grows with k; precision decays once k passes the
        # high-confidence prefix.
        assert recalls[0] < recalls[-1]
        assert precisions[-1] < precisions[0] + 1.0
        assert not any(
            p > 90 and r > 90 for p, r in zip(precisions, recalls)
        )
