"""Figure 11 — resemblance of the k-closest-pairs join to RCJ, vs k.

Paper's finding: the trend follows Figure 10 — growing k trades
precision for recall and no k matches the RCJ result.  (Note RCJ pairs
are *not* the globally closest pairs: pairs in sparse regions have
large circles yet join, so even k = |RCJ| misses many.)
"""

import itertools

from repro.bench.runner import build_workload
from repro.core.gabriel import gabriel_rcj
from repro.datasets.real import join_combination
from repro.evaluation.report import format_series
from repro.evaluation.resemblance import precision_recall
from repro.joins.closest_pairs import incremental_closest_pairs

from benchmarks.conftest import emit


def _sweep(combo: str, scale_factor: int):
    points_q, points_p = join_combination(combo, scale=scale_factor)
    rcj_keys = {r.key() for r in gabriel_rcj(points_p, points_q)}
    workload = build_workload(points_q, points_p)
    n_result = len(rcj_keys)
    # k as fractions of the RCJ result size (the paper sweeps k up to
    # the order of the result cardinality).
    fractions = [0.1, 0.25, 0.5, 1.0, 1.5, 2.0]
    k_values = [max(1, int(n_result * f)) for f in fractions]
    k_max = max(k_values)

    pairs_in_order = []
    gen = incremental_closest_pairs(workload.tree_p, workload.tree_q)
    for _d, p, q in itertools.islice(gen, k_max):
        pairs_in_order.append((p.oid, q.oid))

    precisions, recalls = [], []
    for k in k_values:
        kcp_keys = set(pairs_in_order[:k])
        prec, rec = precision_recall(kcp_keys, rcj_keys)
        precisions.append(prec)
        recalls.append(rec)
    return fractions, k_values, precisions, recalls


def test_fig11_kcp_resemblance(benchmark, scale):
    outputs = benchmark.pedantic(
        lambda: {c: _sweep(c, scale.scale) for c in ("SP", "LP")},
        rounds=1,
        iterations=1,
    )
    for combo, (fractions, k_values, precisions, recalls) in outputs.items():
        table = format_series(
            "k/|RCJ|",
            [f"{f} (k={k})" for f, k in zip(fractions, k_values)],
            {
                "precision%": [f"{v:.1f}" for v in precisions],
                "recall%": [f"{v:.1f}" for v in recalls],
            },
            title=f"Figure 11({combo}): k-closest-pairs vs RCJ",
        )
        emit(f"fig11_{combo}", table)
        # Recall grows with k; precision decays once k passes the
        # high-confidence prefix.
        assert recalls[0] < recalls[-1]
        assert precisions[-1] < precisions[0] + 1.0
        assert not any(
            p > 90 and r > 90 for p, r in zip(precisions, recalls)
        )
