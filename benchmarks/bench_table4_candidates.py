"""Table 4 — number of candidate pairs on real-data stand-ins.

Paper's finding: BRUTE examines the full Cartesian product (~3e10);
INJ cuts that by four orders of magnitude; BIJ's bulk traversal costs
extra candidates; OBJ's symmetric rule brings candidates down to ~30 %
of INJ, close to the actual result count.
"""

from repro.bench.runner import build_workload, run_algorithm
from repro.core.brute import brute_candidate_count
from repro.datasets.real import join_combination
from repro.evaluation.report import format_table

from benchmarks.conftest import emit


def _candidate_table(scale_factor: int) -> tuple[str, dict]:
    rows = []
    by_combo: dict[str, dict[str, int]] = {}
    for combo in ("SP", "LP"):
        points_q, points_p = join_combination(combo, scale=scale_factor)
        workload = build_workload(points_q, points_p)
        counts = {"BRUTE": brute_candidate_count(len(points_p), len(points_q))}
        results = 0
        for algo in ("INJ", "BIJ", "OBJ"):
            report = run_algorithm(workload, algo)
            counts[algo] = report.candidate_count
            results = report.result_count
        counts["RCJ Results"] = results
        by_combo[combo] = counts
    for name in ("BRUTE", "INJ", "BIJ", "OBJ", "RCJ Results"):
        rows.append([name, by_combo["SP"][name], by_combo["LP"][name]])
    table = format_table(
        ["Algorithm", "SP", "LP"],
        rows,
        title=f"Table 4: candidate pairs, real-data stand-ins (scale 1/{scale_factor})",
    )
    return table, by_combo


def test_table4_candidate_counts(benchmark, scale):
    table, by_combo = benchmark.pedantic(
        lambda: _candidate_table(scale.scale), rounds=1, iterations=1
    )
    emit("table4_candidates", table)
    for combo, counts in by_combo.items():
        # The paper's orderings (Table 4).
        assert counts["BRUTE"] > counts["BIJ"] > counts["INJ"], combo
        assert counts["INJ"] > counts["OBJ"], combo
        assert counts["OBJ"] >= counts["RCJ Results"], combo
        # BRUTE is orders of magnitude above the index-based algorithms.
        assert counts["BRUTE"] > 50 * counts["INJ"], combo
        # OBJ stays close to the true result count.
        assert counts["OBJ"] < 3 * counts["RCJ Results"], combo
