"""Ablation — RCJ result size across distribution regimes.

The paper's future work: "determine the theoretical upper bound of RCJ
result size ... for the 'worst' possible data distributions".  This
bench measures the result cardinality of every adversarial family in
:mod:`repro.datasets.worstcase` next to uniform data, against the
analytical model (4|P||Q|/N) and the general-position bound (3N-6).
"""

from repro.core.gabriel import gabriel_rcj
from repro.datasets.synthetic import uniform
from repro.datasets.worstcase import (
    cocircular,
    coincident,
    collinear,
    lattice,
    split_alternating,
    two_clusters,
)
from repro.evaluation.analysis import (
    expected_result_size,
    upper_bound_result_size,
)
from repro.evaluation.report import format_table

from benchmarks.conftest import emit

PAPER_N = 100_000

#: Families needing the quadratic brute comparator are capped.
_DEGENERATE_CAP = 400


def _families(n: int):
    small = min(n, _DEGENERATE_CAP)
    ps_u = uniform(n // 2, seed=250)
    qs_u = uniform(n - n // 2, seed=251, start_oid=n // 2)
    yield "uniform", ps_u, qs_u, True
    for name, pts in (
        ("collinear", collinear(small)),
        ("cocircular", cocircular(small)),
        ("lattice", lattice(small)),
        ("two_clusters", two_clusters(small, seed=252)),
        ("coincident", coincident(min(small, 60))),
    ):
        ps, qs = split_alternating(pts)
        yield name, ps, qs, name in ("collinear", "two_clusters")


def _run(n: int):
    rows = []
    checks = {}
    for name, ps, qs, in_general_position in _families(n):
        result = gabriel_rcj(ps, qs)
        measured = len(result)
        model = expected_result_size(len(ps), len(qs))
        bound_gp = upper_bound_result_size(len(ps), len(qs))
        bound_any = upper_bound_result_size(
            len(ps), len(qs), general_position=False
        )
        rows.append(
            [
                name,
                len(ps),
                len(qs),
                measured,
                f"{model:.0f}",
                bound_gp,
                bound_any,
            ]
        )
        checks[name] = (measured, model, bound_gp, bound_any)
    return rows, checks


def test_ablation_result_size(benchmark, scale):
    n = scale.synthetic_n(PAPER_N)
    rows, checks = benchmark.pedantic(lambda: _run(n), rounds=1, iterations=1)
    table = format_table(
        ["family", "|P|", "|Q|", "measured", "model 4ab/N", "3N-6", "|P||Q|"],
        rows,
        title="Ablation: result size per distribution regime",
    )
    emit("ablation_result_size", table)

    # Universal bound: nothing exceeds |P||Q|.
    for name, (measured, _model, _gp, bound_any) in checks.items():
        assert measured <= bound_any, name
    # General-position families respect the planar bound...
    measured, model, bound_gp, _ = checks["uniform"]
    assert measured <= bound_gp
    # ...and the first-order model is accurate there (±20 %).
    assert 0.8 * model <= measured <= 1.2 * model
    # Coincident duplicates realise the quadratic bound exactly.
    measured, _m, _g, bound_any = checks["coincident"]
    assert measured == bound_any
    # Collinear alternating split is exactly the path.
    measured = checks["collinear"][0]
    assert measured == _DEGENERATE_CAP - 1 or measured == n - 1
